//! Nonblocking C10K runtime: an epoll readiness loop driving thousands of
//! peer connections from a small fixed worker pool, with group-commit
//! durability shared by every replica on the node.
//!
//! The thread-per-connection [`TcpCluster`](crate::TcpCluster) spends one
//! OS thread (stack, scheduler slot) per accepted socket; at C10K scale
//! that is the bottleneck, not the protocol. This runtime serves the same
//! framed protocol — identical bytes, identical
//! [`Costs`](epidb_common::Costs) — from `worker_threads` workers sharing
//! one [`Poller`]: idle connections are parked in the kernel, a readiness
//! event resumes exactly one worker on exactly one connection (oneshot
//! registration), and frame reads/writes proceed incrementally through
//! per-connection buffers until they would block. Complete request frames
//! dispatch into the transport-agnostic [`Engine`] — unsharded via
//! [`Engine::handle`], sharded via [`Engine::handle_sharded`] — so no
//! protocol code knows which runtime carried its bytes.
//!
//! Durability is the group-commit [`GroupWal`]: every mutation journals
//! into one per-node WAL stream through a commit queue, a single
//! committer thread batches queued records and fsyncs once per batch, and
//! an update is acknowledged only after [`GroupWal::wait_durable`] — so
//! under concurrent writers the fsyncs-per-mutation ratio collapses far
//! below one while acked-implies-durable still holds.

use std::collections::HashMap;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_core::codec::{
    check_frame_len, decode_request_checked, encode_response_to, Writer, CHECKED_HEADER, MAX_FRAME,
};
use epidb_core::{
    ChaosLink, ChaosTransport, ConflictPolicy, Engine, GossipBudget, OobOutcome, ProtocolResponse,
    PullOutcome, Replica, RetryPolicy, ShardedNode, Transport,
};
use epidb_durable::{DurabilityConfig, GroupCommitStats, GroupWal, StreamSpec};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use polling::{Event, Interest, Notify, Poller};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tcp::{refusal_or_error, TcpConfig, TcpTransport};
use crate::transport::MutexHost;

/// Serves one request-frame body and encodes the response. This is the
/// seam between the reactor (bytes, readiness, buffers) and the protocol
/// ([`Engine`]): the reactor never decodes a frame, a service never sees
/// a socket.
pub trait FrameService: Send + Sync + 'static {
    /// Whether the service still accepts requests; a `false` tears down
    /// the connection without replying (crashed-node semantics).
    fn alive(&self) -> bool {
        true
    }

    /// Serve one request frame (`body` is the checked envelope: CRC32 +
    /// encoding), encoding the response into `out`. Return `false` to
    /// drop the connection without replying.
    fn serve(&self, body: &[u8], out: &mut Writer) -> bool;
}

/// [`FrameService`] over a sharded node: frames dispatch through
/// [`Engine::handle_sharded`], so only `Shard`-enveloped requests are
/// served — the reactor carries sharded and unsharded traffic with the
/// same byte loop.
pub struct ShardedFrameService {
    node: Mutex<ShardedNode>,
}

impl ShardedFrameService {
    /// Wrap a sharded node for serving.
    pub fn new(node: ShardedNode) -> ShardedFrameService {
        ShardedFrameService { node: Mutex::new(node) }
    }

    /// Run a closure over the locked node (for harness-side inspection
    /// and updates).
    pub fn with_node<T>(&self, f: impl FnOnce(&mut ShardedNode) -> T) -> T {
        f(&mut self.node.lock())
    }
}

impl FrameService for ShardedFrameService {
    fn serve(&self, body: &[u8], out: &mut Writer) -> bool {
        let resp = match decode_request_checked(body) {
            Ok(req) => {
                Engine::handle_sharded(&mut self.node.lock(), req).unwrap_or_else(refusal_or_error)
            }
            Err(e) => ProtocolResponse::Error(format!("bad request: {e}")),
        };
        encode_response_to(&resp, out);
        true
    }
}

/// Reserved poller key for the shutdown doorbell.
const NOTIFY_KEY: u64 = 0;

/// How long a worker sleeps in `wait` with no readiness — the shutdown
/// latency bound for workers the doorbell does not reach.
const WAIT_SLICE: Duration = Duration::from_millis(200);

/// One parked connection: the nonblocking socket plus enough state to
/// resume a half-read request or half-written response on the next
/// readiness event, from any worker.
struct Conn {
    stream: TcpStream,
    service: Arc<dyn FrameService>,
    /// Accumulated request bytes; complete frames are drained off the
    /// front. Grows to the largest frame this connection has carried and
    /// is then reused.
    read_buf: Vec<u8>,
    /// Response encoder, reused across frames (its chunks are the
    /// response body; values ride as refcounted segments, uncopied).
    writer: Writer,
    /// Response frame header: 4-byte LE length + 4-byte LE CRC32.
    head: [u8; 8],
    /// Bytes of `head` + chunks already written to the socket.
    written: usize,
    /// A response is in flight; reads are deferred until it drains (the
    /// protocol is strictly request/response per connection, so this is
    /// also the natural backpressure).
    writing: bool,
}

/// What to do with a connection after driving it.
enum Drive {
    /// Park it again with this interest.
    Keep(Interest),
    /// Deregister and close it.
    Close,
}

impl Conn {
    fn new(stream: TcpStream, service: Arc<dyn FrameService>) -> Conn {
        Conn {
            stream,
            service,
            read_buf: Vec::new(),
            writer: Writer::new(),
            head: [0u8; 8],
            written: 0,
            writing: false,
        }
    }

    /// Resume this connection on a readiness event: flush any pending
    /// response, read what the socket has, serve every complete frame,
    /// and report how to park it (or that it is done).
    fn drive(&mut self, scratch: &mut [u8]) -> Drive {
        if !self.service.alive() {
            return Drive::Close;
        }
        if self.writing && self.flush().is_err() {
            return Drive::Close;
        }
        if !self.writing {
            match self.fill(scratch) {
                Ok(()) => {}
                Err(()) => return Drive::Close,
            }
            if self.pump().is_err() {
                return Drive::Close;
            }
        }
        Drive::Keep(if self.writing { Interest::writable() } else { Interest::readable() })
    }

    /// Read until the socket would block, appending to `read_buf`.
    fn fill(&mut self, scratch: &mut [u8]) -> std::result::Result<(), ()> {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return Err(()), // peer closed
                Ok(n) => self.read_buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }

    /// Serve every complete frame in `read_buf`, opportunistically
    /// flushing each response; stops at a partial frame or a response the
    /// socket would not take whole.
    fn pump(&mut self) -> std::result::Result<(), ()> {
        loop {
            if self.writing {
                self.flush()?;
                if self.writing {
                    return Ok(()); // wait for writability
                }
            }
            if self.read_buf.len() < 4 {
                return Ok(());
            }
            let len = u32::from_le_bytes(self.read_buf[..4].try_into().expect("4 bytes"));
            if len > MAX_FRAME {
                return Err(()); // non-conforming peer; desynchronized
            }
            let total = 4 + len as usize;
            if self.read_buf.len() < total {
                return Ok(());
            }
            let served = self.service.serve(&self.read_buf[4..total], &mut self.writer);
            self.read_buf.drain(..total);
            if !served {
                return Err(());
            }
            let frame_len = check_frame_len(self.writer.len() + CHECKED_HEADER).map_err(|_| ())?;
            self.head[..4].copy_from_slice(&frame_len.to_le_bytes());
            self.head[4..].copy_from_slice(&self.writer.crc32().to_le_bytes());
            self.written = 0;
            self.writing = true;
        }
    }

    /// Write as much of the pending response as the socket takes: one
    /// vectored write over the unwritten suffix of header + chunks per
    /// iteration, resuming at `written` after a short write or a park.
    fn flush(&mut self) -> std::result::Result<(), ()> {
        let total = self.head.len() + self.writer.len();
        while self.written < total {
            let mut skip = self.written;
            let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(8);
            for buf in std::iter::once(&self.head[..]).chain(self.writer.chunks()) {
                if skip >= buf.len() {
                    skip -= buf.len();
                    continue;
                }
                iov.push(IoSlice::new(&buf[skip..]));
                skip = 0;
            }
            match self.stream.write_vectored(&iov) {
                Ok(0) => return Err(()),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()), // still writing
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        self.writing = false;
        self.written = 0;
        Ok(())
    }
}

/// The shared readiness state: one poller, the listeners, and the parked
/// connections. Workers own a connection exclusively while driving it —
/// oneshot registration guarantees only one worker is woken for it, and
/// removing it from `conns` for the duration keeps the map's lock scope
/// to a lookup, never an I/O operation.
struct Reactor {
    poller: Poller,
    notify: Notify,
    listeners: Vec<(TcpListener, Arc<dyn FrameService>)>,
    conns: Mutex<HashMap<u64, Conn>>,
    next_key: AtomicU64,
    running: Arc<AtomicBool>,
}

impl Reactor {
    /// Accept everything pending on listener `key`, register each new
    /// connection, and re-arm the listener.
    fn accept_ready(&self, key: u64) {
        let (listener, service) = &self.listeners[(key - 1) as usize];
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let conn_key = self.next_key.fetch_add(1, Ordering::Relaxed);
                    self.conns.lock().insert(conn_key, Conn::new(stream, service.clone()));
                    if self.poller.add(fd, conn_key, Interest::readable()).is_err() {
                        self.conns.lock().remove(&conn_key);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        let _ = self.poller.modify(listener.as_raw_fd(), key, Interest::readable());
    }

    /// Drive the connection under `key` through one readiness event.
    fn conn_ready(&self, key: u64, scratch: &mut [u8]) {
        // Already closed (or claimed by a racing stale event): nothing to do.
        let Some(mut conn) = self.conns.lock().remove(&key) else {
            return;
        };
        match conn.drive(scratch) {
            Drive::Keep(interest) => {
                let fd = conn.stream.as_raw_fd();
                // Insert *before* re-arming: the instant `modify` lands,
                // another worker may be woken for this key and must find
                // the connection in the map.
                self.conns.lock().insert(key, conn);
                if self.poller.modify(fd, key, interest).is_err() {
                    if let Some(dead) = self.conns.lock().remove(&key) {
                        let _ = self.poller.delete(dead.stream.as_raw_fd());
                    }
                }
            }
            Drive::Close => {
                let _ = self.poller.delete(conn.stream.as_raw_fd());
                // Dropping the Conn closes the socket.
            }
        }
    }
}

fn worker_loop(reactor: Arc<Reactor>) {
    let mut events: Vec<Event> = Vec::new();
    // Per-worker read scratch: sockets drain through this before the
    // bytes land in the owning connection's buffer.
    let mut scratch = vec![0u8; 64 << 10];
    let n_listeners = reactor.listeners.len() as u64;
    while reactor.running.load(Ordering::SeqCst) {
        if reactor.poller.wait(&mut events, Some(WAIT_SLICE)).is_err() {
            return;
        }
        for &ev in &events {
            if ev.key == NOTIFY_KEY {
                // Shutdown doorbell: left undrained on purpose, so its
                // level-triggered readiness keeps waking the remaining
                // workers until every one has seen `running == false`.
                continue;
            }
            if ev.key <= n_listeners {
                reactor.accept_ready(ev.key);
            } else {
                reactor.conn_ready(ev.key, &mut scratch);
            }
        }
    }
}

/// The effective worker count: explicit if nonzero, else a small pool
/// sized to the machine (2–8). The point of the runtime is that this
/// number does **not** scale with connections.
fn effective_workers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2).clamp(2, 8)
    }
}

/// A nonblocking frame server: one listener per [`FrameService`], all
/// served by a fixed worker pool over a shared [`Poller`]. This is the
/// reactor alone — [`AsyncTcpCluster`] composes it with replicas, gossip,
/// and durability; sharded deployments can serve a
/// [`ShardedFrameService`] through it directly.
pub struct AsyncServer {
    reactor: Arc<Reactor>,
    workers: Vec<JoinHandle<()>>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
}

impl AsyncServer {
    /// Bind one localhost listener per service and start `worker_threads`
    /// workers (0 = size to the machine, 2–8).
    pub fn bind(
        services: Vec<Arc<dyn FrameService>>,
        worker_threads: usize,
    ) -> Result<AsyncServer> {
        let net_err = |what: &str, e: std::io::Error| Error::Network(format!("{what}: {e}"));
        let running = Arc::new(AtomicBool::new(true));
        let mut listeners = Vec::with_capacity(services.len());
        let mut addrs = Vec::with_capacity(services.len());
        for service in services {
            let listener =
                TcpListener::bind("127.0.0.1:0").map_err(|e| net_err("async bind", e))?;
            listener.set_nonblocking(true).map_err(|e| net_err("async nonblocking", e))?;
            addrs.push(listener.local_addr().map_err(|e| net_err("async local_addr", e))?);
            listeners.push((listener, service));
        }
        let poller = Poller::new().map_err(|e| net_err("epoll create", e))?;
        let notify = Notify::new().map_err(|e| net_err("eventfd create", e))?;
        poller
            .add(notify.fd(), NOTIFY_KEY, Interest::readable().level())
            .map_err(|e| net_err("register doorbell", e))?;
        for (i, (listener, _)) in listeners.iter().enumerate() {
            poller
                .add(listener.as_raw_fd(), (i + 1) as u64, Interest::readable())
                .map_err(|e| net_err("register listener", e))?;
        }
        let first_conn_key = listeners.len() as u64 + 1;
        let reactor = Arc::new(Reactor {
            poller,
            notify,
            listeners,
            conns: Mutex::new(HashMap::new()),
            next_key: AtomicU64::new(first_conn_key),
            running: running.clone(),
        });
        let workers = (0..effective_workers(worker_threads))
            .map(|i| {
                let reactor = reactor.clone();
                std::thread::Builder::new()
                    .name(format!("epidb-async-{i}"))
                    .spawn(move || worker_loop(reactor))
                    .expect("spawn async worker")
            })
            .collect();
        Ok(AsyncServer { reactor, workers, addrs, running })
    }

    /// The bound address of each service's listener, in bind order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// How many workers serve all connections.
    pub fn worker_threads(&self) -> usize {
        self.workers.len()
    }

    /// Connections currently parked or being driven.
    pub fn open_connections(&self) -> usize {
        self.reactor.conns.lock().len()
    }

    /// Stop the workers and close every connection.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Level-triggered and never drained: stays readable, waking every
        // worker out of `wait` until all have exited.
        self.reactor.notify.notify();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.reactor.conns.lock().clear();
    }
}

impl Drop for AsyncServer {
    fn drop(&mut self) {
        if self.running.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

/// Tuning for [`AsyncTcpCluster`]: the shared [`TcpConfig`] knobs plus
/// the worker-pool size. With `base.durability` set, durability is the
/// group-commit [`GroupWal`] (not the per-node
/// [`NodeDurability`](epidb_durable::NodeDurability) the thread-per-
/// connection cluster uses).
#[derive(Clone, Debug, Default)]
pub struct AsyncTcpConfig {
    /// Protocol, gossip, fault, socket, and durability knobs — shared
    /// with [`TcpCluster`](crate::TcpCluster) so the two runtimes are
    /// interchangeable in harnesses.
    pub base: TcpConfig,
    /// Reactor worker threads (0 = size to the machine, 2–8). Total
    /// serving threads never scale with connection count.
    pub worker_threads: usize,
}

/// One replica served by the reactor, with group-commit durability.
pub struct AsyncNode {
    replica: Mutex<Replica>,
    alive: AtomicBool,
    /// The node's group-commit WAL; `None` without durability, and while
    /// a durable node is crashed (the handle is dropped with the replica
    /// and reopened on revival).
    durable: Mutex<Option<Arc<GroupWal>>>,
}

impl AsyncNode {
    /// Group-commit ack gate plus checkpoint policy, after any mutation.
    /// Blocks until the committer's fsync covers everything this node has
    /// journaled, then runs the byte/record checkpoint triggers. Takes
    /// the replica lock; call only from contexts not holding it.
    fn after_mutation(&self) {
        let durable = self.durable.lock().clone();
        if let Some(wal) = durable {
            wal.wait_durable();
            let replica = self.replica.lock();
            wal.maybe_checkpoint(&[&replica]).expect("durable: checkpoint failed");
        }
    }
}

impl FrameService for AsyncNode {
    fn alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    fn serve(&self, body: &[u8], out: &mut Writer) -> bool {
        if !self.alive() {
            return false;
        }
        let resp = match decode_request_checked(body) {
            Ok(req) => {
                Engine::handle(&mut self.replica.lock(), req).unwrap_or_else(refusal_or_error)
            }
            Err(e) => {
                if matches!(e, Error::CorruptFrame(_)) {
                    self.replica.lock().note_corrupt_frame();
                }
                ProtocolResponse::Error(format!("bad request: {e}"))
            }
        };
        // Ack gate: if serving journaled anything, the response may not
        // leave before the covering fsync. (Pure serves are read-only at
        // the responder, so this is normally a no-wait.)
        let durable = self.durable.lock().clone();
        if let Some(wal) = durable {
            wal.wait_durable();
        }
        encode_response_to(&resp, out);
        true
    }
}

/// Recover (or freshly create) one node's replica backed by the shared
/// group-commit WAL, sink attached.
fn open_group_node(
    cfg: &DurabilityConfig,
    id: NodeId,
    n_nodes: usize,
    n_items: usize,
    delta_budget: usize,
    paranoid: bool,
) -> (Arc<GroupWal>, Replica) {
    // As with `NodeDurability::open_with`, policy and delta budget are
    // journaled into the WAL header — the arguments are fresh-start
    // defaults and recovery is config-free.
    let (wal, mut replicas, _report) = GroupWal::open(
        cfg,
        cfg.node_dir(id),
        &[StreamSpec { id, n_nodes, n_items }],
        ConflictPolicy::Report,
        delta_budget,
    )
    .expect("durable: group recovery failed");
    let mut replica = replicas.pop().expect("exactly one stream");
    replica.set_paranoid(paranoid);
    wal.attach(0, &mut replica);
    (wal, replica)
}

/// A cluster of replicas served by the nonblocking reactor and gossiping
/// over localhost TCP — the C10K counterpart of
/// [`TcpCluster`](crate::TcpCluster), with the same protocol bytes and
/// the same harness API.
pub struct AsyncTcpCluster {
    nodes: Vec<Arc<AsyncNode>>,
    server: Option<AsyncServer>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    gossips: Vec<JoinHandle<()>>,
    config: AsyncTcpConfig,
    n_items: usize,
}

impl AsyncTcpCluster {
    /// Bind `n_nodes` reactor-served listeners on localhost and start
    /// gossiping.
    pub fn spawn(
        n_nodes: usize,
        n_items: usize,
        config: AsyncTcpConfig,
    ) -> Result<AsyncTcpCluster> {
        assert!(n_nodes >= 2);
        let base = &config.base;
        let nodes: Vec<Arc<AsyncNode>> = (0..n_nodes)
            .map(|i| {
                let id = NodeId::from_index(i);
                let (durable, mut replica) = match &base.durability {
                    Some(cfg) => {
                        let (wal, replica) = open_group_node(
                            cfg,
                            id,
                            n_nodes,
                            n_items,
                            base.delta_budget,
                            base.paranoid,
                        );
                        (Some(wal), replica)
                    }
                    None => {
                        let mut replica = Replica::new(id, n_nodes, n_items);
                        if base.delta_budget > 0 {
                            replica.enable_delta(base.delta_budget);
                        }
                        replica.set_paranoid(base.paranoid);
                        (None, replica)
                    }
                };
                replica.set_delta_frame_budget(base.delta_frame_bytes);
                Arc::new(AsyncNode {
                    replica: Mutex::new(replica),
                    alive: AtomicBool::new(true),
                    durable: Mutex::new(durable),
                })
            })
            .collect();

        let services: Vec<Arc<dyn FrameService>> =
            nodes.iter().map(|n| n.clone() as Arc<dyn FrameService>).collect();
        let server = AsyncServer::bind(services, config.worker_threads)?;
        let addrs = server.addrs().to_vec();

        let running = Arc::new(AtomicBool::new(true));
        let gossips = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let me = NodeId::from_index(i);
                let node = node.clone();
                let peer_addrs = addrs.clone();
                let run = running.clone();
                let cfg = base.clone();
                std::thread::spawn(move || gossip_loop(me, node, peer_addrs, run, cfg))
            })
            .collect();
        Ok(AsyncTcpCluster {
            nodes,
            server: Some(server),
            addrs,
            running,
            gossips,
            config,
            n_items,
        })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Reactor worker threads serving *all* connections of *all* nodes.
    pub fn worker_threads(&self) -> usize {
        self.server.as_ref().map_or(0, AsyncServer::worker_threads)
    }

    /// Connections currently held open by the reactor.
    pub fn open_connections(&self) -> usize {
        self.server.as_ref().map_or(0, AsyncServer::open_connections)
    }

    /// The socket address a node's replica server listens on.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// Apply a user update at `node`. With durability, returns only after
    /// the update's group-commit batch is fsynced (acked ⇒ durable).
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let n = self.checked(node)?;
        n.replica.lock().update(item, op)?;
        n.after_mutation();
        Ok(())
    }

    /// Read the user-visible value at `node`; crashed durable nodes have
    /// no in-memory replica and report [`Error::NodeDown`].
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if self.config.base.durability.is_some() && !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n.replica.lock().read(item)?.as_bytes().to_vec())
    }

    fn checked(&self, node: NodeId) -> Result<&Arc<AsyncNode>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n)
    }

    /// A fresh [`TcpTransport`] to `peer`'s reactor-served listener.
    pub fn transport_to(&self, peer: NodeId) -> TcpTransport {
        TcpTransport::with_options(peer, self.addr(peer), self.config.base.socket)
    }

    /// Out-of-bound fetch, driven through the engine like every exchange.
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        if recipient == source {
            return Ok(OobOutcome::AlreadyCurrent);
        }
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::oob(&mut MutexHost(&node.replica), &mut transport, item)?;
        node.after_mutation();
        Ok(out)
    }

    /// Run one whole-item pull right now, bypassing the gossip schedule.
    pub fn pull_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::pull(&mut MutexHost(&node.replica), &mut transport)?;
        node.after_mutation();
        Ok(out)
    }

    /// As [`pull_now`](Self::pull_now), in delta mode.
    pub fn pull_delta_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::pull_delta(&mut MutexHost(&node.replica), &mut transport)?;
        node.after_mutation();
        Ok(out)
    }

    /// As [`pull_now`](Self::pull_now), via digest-tree set
    /// reconciliation — the cold-start rung below whole-pull.
    pub fn pull_recon_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::pull_recon(&mut MutexHost(&node.replica), &mut transport)?;
        node.after_mutation();
        Ok(out)
    }

    /// Bound log-vector retention at `node` to `keep` records per
    /// (origin, item) component.
    pub fn set_log_retention(&self, node: NodeId, keep: usize) -> Result<()> {
        let node = self.checked(node)?;
        node.replica.lock().set_log_retention(keep);
        node.after_mutation();
        Ok(())
    }

    /// One whole-item pull at `recipient` over a caller-supplied
    /// transport with a retry policy.
    pub fn pull_now_via<T: Transport>(
        &self,
        recipient: NodeId,
        transport: &mut T,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        let node = self.checked(recipient)?;
        let out = Engine::pull_with(&mut MutexHost(&node.replica), transport, policy)?;
        node.after_mutation();
        Ok(out)
    }

    /// As [`pull_now_via`](Self::pull_now_via), in delta mode.
    pub fn pull_delta_now_via<T: Transport>(
        &self,
        recipient: NodeId,
        transport: &mut T,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        let node = self.checked(recipient)?;
        let out = Engine::pull_delta_with(&mut MutexHost(&node.replica), transport, policy)?;
        node.after_mutation();
        Ok(out)
    }

    /// One whole-item pull through a caller-owned [`ChaosLink`] — the
    /// chaos-soak entry point.
    pub fn pull_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let mut transport = ChaosTransport::new(self.transport_to(source), link);
        self.pull_now_via(recipient, &mut transport, policy)
    }

    /// As [`pull_now_chaos`](Self::pull_now_chaos), in delta mode.
    pub fn pull_delta_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let mut transport = ChaosTransport::new(self.transport_to(source), link);
        self.pull_delta_now_via(recipient, &mut transport, policy)
    }

    /// Crash a node: its connections drop without replying and it stops
    /// gossiping. With durability, the in-memory replica and the WAL
    /// handle are really dropped (the group WAL's committer flushes its
    /// queue and exits); only the on-disk state survives.
    pub fn crash(&self, node: NodeId) {
        let n = &self.nodes[node.index()];
        n.alive.store(false, Ordering::SeqCst);
        if self.config.base.durability.is_some() {
            let placeholder = Replica::new(node, self.n_nodes(), self.n_items);
            *n.replica.lock() = placeholder;
            *n.durable.lock() = None;
        }
    }

    /// Revive a crashed node; with durability, group recovery rebuilds
    /// the replica from its snapshots + shared WAL, then anti-entropy
    /// brings it the rest of the way.
    pub fn revive(&self, node: NodeId) {
        let n = &self.nodes[node.index()];
        if let Some(cfg) = &self.config.base.durability {
            let (wal, mut replica) = open_group_node(
                cfg,
                node,
                self.n_nodes(),
                self.n_items,
                self.config.base.delta_budget,
                self.config.base.paranoid,
            );
            replica.set_delta_frame_budget(self.config.base.delta_frame_bytes);
            *n.replica.lock() = replica;
            *n.durable.lock() = Some(wal);
        }
        n.alive.store(true, Ordering::SeqCst);
    }

    /// The group-commit counters of a node's WAL (`None` without
    /// durability or while crashed): records journaled, batches taken,
    /// fsyncs issued. The runtime's claim is `fsyncs ≪ records` under
    /// concurrent writers.
    pub fn group_commit_stats(&self, node: NodeId) -> Option<GroupCommitStats> {
        self.nodes[node.index()].durable.lock().as_ref().map(|w| w.stats())
    }

    /// Run a closure over a locked replica.
    pub fn with_replica<T>(&self, node: NodeId, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes[node.index()].replica.lock())
    }

    /// Wait until all alive replicas hold equal DBVVs and no auxiliary
    /// state remains, or the deadline passes.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        self.try_quiesce(timeout).is_ok()
    }

    /// As [`quiesce`](Self::quiesce), surfacing a timeout as the typed
    /// [`Error::DeadlineExceeded`].
    pub fn try_quiesce(&self, timeout: Duration) -> Result<()> {
        crate::runtime::quiesce_policy(self.config.base.gossip_interval).poll_until(
            "quiescence",
            timeout,
            || self.is_quiescent(),
        )
    }

    fn is_quiescent(&self) -> bool {
        let alive: Vec<&Arc<AsyncNode>> =
            self.nodes.iter().filter(|n| n.alive.load(Ordering::SeqCst)).collect();
        if alive.len() < 2 {
            return true;
        }
        let first = alive[0].replica.lock();
        let reference = first.dbvv().clone();
        let head_ok = first.aux_item_count() == 0;
        drop(first);
        head_ok
            && alive[1..].iter().all(|n| {
                let r = n.replica.lock();
                r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal
            })
    }

    /// Stop gossip and the reactor; return the final replicas (journal
    /// sinks detached — the clones are for inspection, not appending).
    pub fn shutdown(mut self) -> Vec<Replica> {
        self.stop();
        self.nodes
            .iter()
            .map(|n| {
                let mut r = n.replica.lock().clone();
                r.set_mutation_sink(None);
                r
            })
            .collect()
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        for h in self.gossips.drain(..) {
            let _ = h.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        // Dropping the last WAL handles flushes and closes the committers.
        for n in &self.nodes {
            *n.durable.lock() = None;
        }
    }
}

impl Drop for AsyncTcpCluster {
    fn drop(&mut self) {
        if self.running.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

/// Initiator-side gossip, identical to the thread-per-connection
/// runtime's: the C10K work is all on the serving side, so initiators
/// stay simple blocking clients. One tick = one pull from one random
/// peer through a persistent per-peer chaos link.
fn gossip_loop(
    me: NodeId,
    node: Arc<AsyncNode>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    let n = addrs.len();
    let budget = GossipBudget::per_frame(cfg.max_frame_items);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x51_7C_C1));
    let plan = cfg.effective_plan();
    let mut links: Vec<ChaosLink> = (0..n)
        .map(|peer| {
            let link_seed = cfg
                .seed
                .wrapping_add(((me.index() * n + peer) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ChaosLink::new(link_seed, plan.clone())
        })
        .collect();
    while running.load(Ordering::SeqCst) {
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !node.alive.load(Ordering::SeqCst) {
            continue;
        }
        let mut peer = rng.gen_range(0..n);
        if peer == me.index() {
            peer = (peer + 1) % n;
        }
        let tcp = TcpTransport::with_options(NodeId::from_index(peer), addrs[peer], cfg.socket);
        let mut transport = ChaosTransport::new(tcp, &mut links[peer]);
        let mut host = MutexHost(&node.replica);
        let result = if cfg.delta_budget > 0 {
            Engine::pull_delta_budgeted(&mut host, &mut transport, &cfg.retry, &budget)
        } else {
            Engine::pull_with(&mut host, &mut transport, &cfg.retry)
        };
        if result.is_ok() {
            node.after_mutation();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidb_core::{ProtocolRequest, ShardMap, ShardTransport};

    #[test]
    fn updates_converge_over_the_async_runtime() {
        let cluster = AsyncTcpCluster::spawn(
            3,
            50,
            AsyncTcpConfig {
                base: TcpConfig {
                    gossip_interval: Duration::from_millis(2),
                    ..TcpConfig::default()
                },
                worker_threads: 2,
            },
        )
        .unwrap();
        assert_eq!(cluster.worker_threads(), 2);
        for i in 0..12u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8 + 1]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence on the async runtime");
        for i in 0..12u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8 + 1]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert_eq!(r.costs().conflicts_detected, 0);
        }
    }

    #[test]
    fn delta_gossip_converges_on_the_async_runtime() {
        let cluster = AsyncTcpCluster::spawn(
            3,
            20,
            AsyncTcpConfig {
                base: TcpConfig {
                    gossip_interval: Duration::from_millis(2),
                    delta_budget: 1 << 20,
                    max_frame_items: 2,
                    delta_frame_bytes: 64,
                    ..TcpConfig::default()
                },
                worker_threads: 2,
            },
        )
        .unwrap();
        for i in 0..10u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 48]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence with tight budgets");
        for i in 0..10u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8; 48]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }

    #[test]
    fn many_parked_connections_on_two_workers() {
        // A few hundred concurrently-open connections served by 2 worker
        // threads: every connection completes an exchange, is parked, and
        // completes a second one — the full-scale version (1000+) is the
        // `c10k_connections` perf scenario.
        let cluster = AsyncTcpCluster::spawn(
            2,
            8,
            AsyncTcpConfig {
                base: TcpConfig {
                    gossip_interval: Duration::from_secs(60),
                    ..TcpConfig::default()
                },
                worker_threads: 2,
            },
        )
        .unwrap();
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"fanout"[..])).unwrap();
        let client = Replica::new(NodeId(1), 2, 8);
        let dbvv = client.dbvv().clone();
        let mut transports: Vec<TcpTransport> =
            (0..256).map(|_| cluster.transport_to(NodeId(0))).collect();
        for round in 0..2 {
            for t in &mut transports {
                let resp = t
                    .exchange(ProtocolRequest::Pull { from: NodeId(1), dbvv: dbvv.clone() })
                    .unwrap();
                assert!(
                    !matches!(resp, ProtocolResponse::Error(_)),
                    "round {round}: unexpected error response"
                );
            }
            // All 256 sockets stay open between rounds; the reactor is
            // parking them, not a thread each. A just-served connection is
            // briefly out of the parked set while its worker re-arms it,
            // so give the count a moment to settle.
            RetryPolicy::default()
                .poll_until("parked connections", Duration::from_secs(5), || {
                    cluster.open_connections() >= 256
                })
                .unwrap_or_else(|_| {
                    panic!(
                        "connections were not kept open (round {round}: {} open)",
                        cluster.open_connections()
                    )
                });
        }
        drop(transports);
        cluster.shutdown();
    }

    #[test]
    fn crashed_durable_node_recovers_from_the_group_wal() {
        let tmp = epidb_durable::testdir::TempDir::new("async-crash");
        let cluster = AsyncTcpCluster::spawn(
            3,
            20,
            AsyncTcpConfig {
                base: TcpConfig {
                    gossip_interval: Duration::from_millis(2),
                    durability: Some(DurabilityConfig::new(tmp.path().clone())),
                    ..TcpConfig::default()
                },
                worker_threads: 2,
            },
        )
        .unwrap();
        cluster.update(NodeId(2), ItemId(5), UpdateOp::set(&b"pre-crash"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        cluster.crash(NodeId(2));
        assert!(matches!(cluster.read(NodeId(2), ItemId(5)), Err(Error::NodeDown(NodeId(2)))));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(5)).unwrap(), b"pre-crash");
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }

    #[test]
    fn group_commit_acks_after_fsync_and_batches_writers() {
        let tmp = epidb_durable::testdir::TempDir::new("async-group-commit");
        let mut durability = DurabilityConfig::new(tmp.path().clone());
        durability.fsync = true;
        durability.checkpoint_every = u64::MAX; // isolate the WAL counters
        let cluster = Arc::new(
            AsyncTcpCluster::spawn(
                2,
                64,
                AsyncTcpConfig {
                    base: TcpConfig {
                        gossip_interval: Duration::from_secs(60),
                        durability: Some(durability),
                        ..TcpConfig::default()
                    },
                    worker_threads: 2,
                },
            )
            .unwrap(),
        );
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let cluster = cluster.clone();
                std::thread::spawn(move || {
                    for i in 0..16u32 {
                        let item = ItemId(w * 16 + i);
                        cluster.update(NodeId(0), item, UpdateOp::set(vec![w as u8; 8])).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let stats = cluster.group_commit_stats(NodeId(0)).unwrap();
        assert_eq!(stats.records, 64, "every update journaled exactly once");
        assert_eq!(stats.batches, stats.fsyncs, "one fsync per taken batch");
        assert!(stats.fsyncs <= stats.records, "batching never costs extra fsyncs");
        match Arc::try_unwrap(cluster) {
            Ok(cluster) => {
                cluster.shutdown();
            }
            Err(_) => panic!("writer threads still hold the cluster"),
        }
    }

    #[test]
    fn sharded_dispatch_through_the_reactor() {
        // The reactor serves a sharded node via `Engine::handle_sharded`;
        // a client pulls one shard through `ShardTransport` over a plain
        // `TcpTransport` — proving the async runtime carries the sharded
        // protocol without any shard-aware code in the byte loop.
        let map = ShardMap::new(4, vec![vec![NodeId(0), NodeId(1)]]);
        let mut server_node = ShardedNode::new(NodeId(0), 2, map.clone(), ConflictPolicy::Report);
        let shard = map.shard_of(ItemId(1)).unwrap();
        server_node
            .shard_state_mut(shard)
            .unwrap()
            .update(ItemId(1), UpdateOp::set(&b"sharded-bytes"[..]))
            .unwrap();
        let service = Arc::new(ShardedFrameService::new(server_node));
        let server = AsyncServer::bind(vec![service.clone() as Arc<dyn FrameService>], 2).unwrap();

        let mut client_node = ShardedNode::new(NodeId(1), 2, map, ConflictPolicy::Report);
        let mut tcp = TcpTransport::new(NodeId(0), server.addrs()[0]);
        let mut transport = ShardTransport::new(&mut tcp, shard);
        Engine::pull(client_node.shard_state_mut(shard).unwrap(), &mut transport).unwrap();
        let fetched = client_node.shard_state(shard).unwrap().read(ItemId(1)).unwrap();
        assert_eq!(fetched.as_bytes(), b"sharded-bytes");
        server.shutdown();
    }
}
