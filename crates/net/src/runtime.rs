//! The threaded cluster runtime: OS threads per replica, crossbeam
//! channels for the network, parking_lot mutexes guarding replica state.
//!
//! Each node runs two threads: a *server* thread that executes incoming
//! [`ProtocolRequest`]s through [`Engine::handle`] (the same dispatch
//! surface every runtime uses), and a *gossip* thread that periodically
//! drives [`Engine::pull`] against a random peer over a channel
//! transport. Cost accounting, tracing, and paranoid audits all
//! happen inside the engine — this runtime only moves the enums.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_core::{
    ChaosLink, ChaosTransport, ConflictPolicy, Engine, FaultPlan, GossipBudget, OobOutcome,
    ProtocolRequest, ProtocolResponse, PullOutcome, Replica, RetryPolicy, Transport,
};
use epidb_durable::{DurabilityConfig, NodeDurability};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::NetMessage;
use crate::transport::MutexHost;

/// Tuning and fault-injection knobs for the threaded cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// How often each node initiates an anti-entropy pull from a random
    /// peer.
    pub gossip_interval: Duration,
    /// Probability that either leg of an exchange is silently dropped
    /// (shorthand for a [`FaultPlan::lossy`] plan; ignored when
    /// `fault_plan` is set).
    pub loss_probability: f64,
    /// Fixed delay added to every exchange (folded into the fault plan;
    /// ignored when `fault_plan` is set).
    pub latency: Duration,
    /// Seed for the per-node RNGs (peer choice) and per-link chaos.
    pub seed: u64,
    /// How long an initiator waits for a response before declaring the
    /// exchange lost (a crashed peer drops requests silently).
    pub exchange_timeout: Duration,
    /// Op-cache budget per replica; when non-zero, replicas cache update
    /// operations and gossip pulls run in delta mode.
    pub delta_budget: usize,
    /// Run every replica in paranoid mode (per-step invariant audits).
    pub paranoid: bool,
    /// Full fault mix for gossip links; overrides `loss_probability` and
    /// `latency` when set.
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy the gossip loop applies within each anti-entropy
    /// round (between rounds, the next tick is the retry).
    pub retry: RetryPolicy,
    /// On-disk durability. When set, every node keeps a write-ahead log
    /// and checkpointed snapshots under `durability.dir`;
    /// [`ThreadedCluster::crash`] then actually drops the in-memory
    /// replica and [`ThreadedCluster::revive`] reconstructs it from disk.
    /// When `None` (the default), crash/revive only toggle liveness and
    /// the replica survives in memory.
    pub durability: Option<DurabilityConfig>,
    /// Maximum wanted items per `DeltaFetch` frame in delta gossip
    /// rounds (`usize::MAX` = no coalescing: the exchange shape — and
    /// therefore the per-node [`Costs`](epidb_common::Costs) — matches
    /// the unchunked protocol).
    pub max_frame_items: usize,
    /// Responder-side byte budget per delta payload frame (`u64::MAX` =
    /// unbounded). A budgeted responder serves a prefix of the want-list
    /// and the initiator re-requests the rest.
    pub delta_frame_bytes: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            gossip_interval: Duration::from_millis(5),
            loss_probability: 0.0,
            latency: Duration::ZERO,
            seed: 0xE51D,
            exchange_timeout: Duration::from_millis(500),
            delta_budget: 0,
            paranoid: false,
            fault_plan: None,
            retry: RetryPolicy::none(),
            durability: None,
            max_frame_items: usize::MAX,
            delta_frame_bytes: u64::MAX,
        }
    }
}

impl ClusterConfig {
    /// The fault plan gossip links run: `fault_plan` if set, else the
    /// `loss_probability` / `latency` shorthand.
    pub fn effective_plan(&self) -> FaultPlan {
        self.fault_plan.clone().unwrap_or(FaultPlan {
            latency: self.latency,
            ..FaultPlan::lossy(self.loss_probability)
        })
    }
}

struct NodeShared {
    replica: Mutex<Replica>,
    alive: AtomicBool,
    /// The node's durability layer; `None` when durability is off, and
    /// also while a durable node is crashed (the WAL handle is dropped
    /// with the replica and reopened on revival).
    durability: Mutex<Option<Arc<NodeDurability>>>,
}

impl NodeShared {
    /// Run the checkpoint policy after a durable mutation. Takes the
    /// replica lock; call only from contexts that do not already hold it.
    fn after_mutation(&self) {
        let durability = self.durability.lock().clone();
        if let Some(d) = durability {
            let replica = self.replica.lock();
            d.maybe_checkpoint(&replica).expect("durable: checkpoint failed");
        }
    }
}

/// Recover (or freshly create) one durable node and configure it like the
/// runtime's in-memory replicas. Shared by the threaded and TCP runtimes.
pub(crate) fn open_durable_node(
    cfg: &DurabilityConfig,
    id: NodeId,
    n_nodes: usize,
    n_items: usize,
    delta_budget: usize,
    paranoid: bool,
) -> (Arc<NodeDurability>, Replica) {
    // `open_with` journals policy + delta budget into the WAL header and
    // re-enables the delta cache itself on recovery — the arguments here
    // are only the fresh-start defaults.
    let (durability, mut replica, _report) =
        NodeDurability::open_with(cfg, id, n_nodes, n_items, ConflictPolicy::Report, delta_budget)
            .expect("durable: recovery failed");
    replica.set_paranoid(paranoid);
    durability.attach(&mut replica);
    (durability, replica)
}

/// The probe-pacing policy shared by every runtime's `quiesce`: probes
/// start near the gossip interval and decay exponentially (with the
/// standard deterministic jitter) toward a 50 ms cap — converging
/// clusters are checked often early, idle ones rarely.
pub(crate) fn quiesce_policy(gossip_interval: Duration) -> RetryPolicy {
    RetryPolicy {
        max_attempts: u32::MAX,
        base_backoff: gossip_interval.min(Duration::from_millis(1)).max(Duration::from_micros(100)),
        max_backoff: Duration::from_millis(50),
        round_deadline: None,
        jitter_seed: 0,
    }
}

/// The channel transport: an exchange sends a [`NetMessage::Request`] to
/// the peer's server thread and blocks on a fresh reply channel, like an
/// RPC over a connected socket.
pub(crate) struct ChannelTransport<'a> {
    pub(crate) peer: NodeId,
    pub(crate) sender: &'a Sender<NetMessage>,
    pub(crate) timeout: Duration,
}

impl Transport for ChannelTransport<'_> {
    fn peer(&self) -> NodeId {
        self.peer
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        let (tx, rx) = unbounded();
        self.sender
            .send(NetMessage::Request { req, reply: tx })
            .map_err(|_| Error::Network(format!("node {} is gone", self.peer)))?;
        match rx.recv_timeout(self.timeout) {
            Ok(result) => result,
            Err(_) => Err(Error::Network(format!("no response from {}", self.peer))),
        }
    }
}

/// A running cluster of replica threads.
pub struct ThreadedCluster {
    nodes: Vec<Arc<NodeShared>>,
    senders: Vec<Sender<NetMessage>>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    config: ClusterConfig,
}

impl ThreadedCluster {
    /// Spawn `n_nodes` replica threads over an `n_items` database.
    pub fn spawn(n_nodes: usize, n_items: usize, config: ClusterConfig) -> ThreadedCluster {
        assert!(n_nodes >= 2, "a cluster needs at least two nodes");
        let nodes: Vec<Arc<NodeShared>> = (0..n_nodes)
            .map(|i| {
                let id = NodeId::from_index(i);
                let (durability, mut replica) = match &config.durability {
                    Some(cfg) => {
                        let (d, r) = open_durable_node(
                            cfg,
                            id,
                            n_nodes,
                            n_items,
                            config.delta_budget,
                            config.paranoid,
                        );
                        (Some(d), r)
                    }
                    None => {
                        let mut replica = Replica::new(id, n_nodes, n_items);
                        if config.delta_budget > 0 {
                            replica.enable_delta(config.delta_budget);
                        }
                        replica.set_paranoid(config.paranoid);
                        (None, replica)
                    }
                };
                replica.set_delta_frame_budget(config.delta_frame_bytes);
                Arc::new(NodeShared {
                    replica: Mutex::new(replica),
                    alive: AtomicBool::new(true),
                    durability: Mutex::new(durability),
                })
            })
            .collect();
        let channels: Vec<(Sender<NetMessage>, Receiver<NetMessage>)> =
            (0..n_nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<NetMessage>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let running = Arc::new(AtomicBool::new(true));

        let mut handles = Vec::with_capacity(2 * n_nodes);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let shared = nodes[i].clone();
            handles.push(std::thread::spawn(move || serve_loop(shared, rx)));

            let me = NodeId::from_index(i);
            let shared = nodes[i].clone();
            let peers = senders.clone();
            let run = running.clone();
            let cfg = config.clone();
            handles.push(std::thread::spawn(move || gossip_loop(me, shared, peers, run, cfg)));
        }
        ThreadedCluster { nodes, senders, running, handles, config }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Apply a user update at `node` (serviced by that single server, §2).
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let shared = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !shared.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        shared.replica.lock().update(item, op)?;
        shared.after_mutation();
        Ok(())
    }

    /// Read the user-visible value of `item` at `node`. With durability
    /// on, a crashed node's in-memory replica has been dropped, so reading
    /// it is an error rather than a stale answer.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        let shared = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if self.config.durability.is_some() && !shared.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(shared.replica.lock().read(item)?.as_bytes().to_vec())
    }

    fn checked(&self, node: NodeId) -> Result<&Arc<NodeShared>> {
        let shared = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !shared.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(shared)
    }

    /// A fault-free transport to `source`'s server thread.
    fn transport(&self, source: NodeId) -> ChannelTransport<'_> {
        ChannelTransport {
            peer: source,
            sender: &self.senders[source.index()],
            timeout: self.config.exchange_timeout.max(Duration::from_secs(1)),
        }
    }

    /// Synchronous out-of-bound fetch: `recipient` obtains `source`'s
    /// newest copy of `item` right now (the on-demand RPC of §5.2),
    /// through the engine like every other exchange.
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        if recipient == source {
            return Ok(OobOutcome::AlreadyCurrent);
        }
        self.checked(source)?;
        let shared = self.checked(recipient)?;
        let out = Engine::oob(&mut MutexHost(&shared.replica), &mut self.transport(source), item)?;
        shared.after_mutation();
        Ok(out)
    }

    /// Run one whole-item pull right now (`recipient` from `source`),
    /// bypassing the gossip schedule — deterministic schedules for tests.
    pub fn pull_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let shared = self.checked(recipient)?;
        let out = Engine::pull(&mut MutexHost(&shared.replica), &mut self.transport(source))?;
        shared.after_mutation();
        Ok(out)
    }

    /// As [`pull_now`](Self::pull_now), in delta mode.
    pub fn pull_delta_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let shared = self.checked(recipient)?;
        let out = Engine::pull_delta(&mut MutexHost(&shared.replica), &mut self.transport(source))?;
        shared.after_mutation();
        Ok(out)
    }

    /// As [`pull_now`](Self::pull_now), via digest-tree set
    /// reconciliation — the cold-start rung below whole-pull.
    pub fn pull_recon_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let shared = self.checked(recipient)?;
        let out = Engine::pull_recon(&mut MutexHost(&shared.replica), &mut self.transport(source))?;
        shared.after_mutation();
        Ok(out)
    }

    /// Bound log-vector retention at `node` to `keep` records per
    /// (origin, item) component.
    pub fn set_log_retention(&self, node: NodeId, keep: usize) -> Result<()> {
        let shared = self.checked(node)?;
        shared.replica.lock().set_log_retention(keep);
        shared.after_mutation();
        Ok(())
    }

    /// One whole-item pull through a caller-owned [`ChaosLink`] with a
    /// retry policy — the chaos-soak entry point: the harness owns one
    /// persistent link per (recipient, source) pair, so the fault process
    /// is continuous and seed-deterministic across rounds.
    pub fn pull_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let shared = self.checked(recipient)?;
        let mut transport = ChaosTransport::new(self.transport(source), link);
        let out = Engine::pull_with(&mut MutexHost(&shared.replica), &mut transport, policy)?;
        shared.after_mutation();
        Ok(out)
    }

    /// As [`pull_now_chaos`](Self::pull_now_chaos), in delta mode (with
    /// the engine's delta-to-whole degradation ladder on retryable
    /// failures).
    pub fn pull_delta_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let shared = self.checked(recipient)?;
        let mut transport = ChaosTransport::new(self.transport(source), link);
        let out = Engine::pull_delta_with(&mut MutexHost(&shared.replica), &mut transport, policy)?;
        shared.after_mutation();
        Ok(out)
    }

    /// Crash a node: it drops all traffic and initiates nothing until
    /// revived.
    ///
    /// With durability configured this is a real crash: the in-memory
    /// [`Replica`] is dropped (replaced by an empty placeholder with no
    /// journal attached) and the WAL handle closed — only the on-disk
    /// state survives, exactly as a dead server's disk would. Without
    /// durability, the replica stays in memory (the legacy simulation).
    pub fn crash(&self, node: NodeId) {
        let shared = &self.nodes[node.index()];
        shared.alive.store(false, Ordering::SeqCst);
        if self.config.durability.is_some() {
            let placeholder =
                Replica::new(node, self.n_nodes(), self.with_replica(node, Replica::n_items));
            *shared.replica.lock() = placeholder;
            *shared.durability.lock() = None;
        }
    }

    /// Revive a crashed node; with durability configured, the replica is
    /// first reconstructed from its on-disk snapshot + WAL, then
    /// anti-entropy brings it the rest of the way up to date.
    pub fn revive(&self, node: NodeId) {
        let shared = &self.nodes[node.index()];
        if let Some(cfg) = &self.config.durability {
            let (durability, mut replica) = open_durable_node(
                cfg,
                node,
                self.n_nodes(),
                self.with_replica(node, Replica::n_items),
                self.config.delta_budget,
                self.config.paranoid,
            );
            replica.set_delta_frame_budget(self.config.delta_frame_bytes);
            *shared.replica.lock() = replica;
            *shared.durability.lock() = Some(durability);
        }
        shared.alive.store(true, Ordering::SeqCst);
    }

    /// Run a closure over a locked replica (inspection).
    pub fn with_replica<T>(&self, node: NodeId, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes[node.index()].replica.lock())
    }

    /// Wait until all *alive* replicas have identical DBVVs and no
    /// auxiliary state (identical databases, by the paper's Theorem 3
    /// corollary), or the deadline passes. Returns whether quiescence was
    /// reached; see [`ThreadedCluster::try_quiesce`] for the typed form.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        self.try_quiesce(timeout).is_ok()
    }

    /// As [`ThreadedCluster::quiesce`], surfacing a timeout as the typed
    /// [`Error::DeadlineExceeded`]. Probe pacing follows the shared
    /// [`RetryPolicy`] backoff (exponential from the gossip interval,
    /// deterministically jittered, capped).
    pub fn try_quiesce(&self, timeout: Duration) -> Result<()> {
        quiesce_policy(self.config.gossip_interval)
            .poll_until("quiescence", timeout, || self.is_quiescent())
    }

    fn is_quiescent(&self) -> bool {
        let alive: Vec<&Arc<NodeShared>> =
            self.nodes.iter().filter(|n| n.alive.load(Ordering::SeqCst)).collect();
        if alive.len() < 2 {
            return true;
        }
        let first = alive[0].replica.lock();
        let reference = first.dbvv().clone();
        if first.aux_item_count() > 0 {
            return false;
        }
        drop(first);
        alive[1..].iter().all(|n| {
            let r = n.replica.lock();
            r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal
        })
    }

    /// Stop all threads and return the final replicas (journal sinks
    /// detached — the clones are for inspection, not for appending to the
    /// cluster's WALs).
    pub fn shutdown(mut self) -> Vec<Replica> {
        self.stop();
        self.nodes
            .iter()
            .map(|n| {
                let mut r = n.replica.lock().clone();
                r.set_mutation_sink(None);
                r
            })
            .collect()
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        for s in &self.senders {
            let _ = s.send(NetMessage::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The server side of a node: execute every incoming request through the
/// engine. A crashed node silently drops requests (the initiator times
/// out), like a dead host on a real network.
fn serve_loop(shared: Arc<NodeShared>, rx: Receiver<NetMessage>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            NetMessage::Shutdown => return,
            NetMessage::Request { req, reply } => {
                if !shared.alive.load(Ordering::SeqCst) {
                    continue;
                }
                let result = Engine::handle(&mut shared.replica.lock(), req);
                let _ = reply.send(result);
            }
        }
    }
}

/// The initiator side of a node: periodically pull from a random peer.
fn gossip_loop(
    me: NodeId,
    shared: Arc<NodeShared>,
    senders: Vec<Sender<NetMessage>>,
    running: Arc<AtomicBool>,
    cfg: ClusterConfig,
) {
    let n = senders.len();
    let budget = GossipBudget::per_frame(cfg.max_frame_items);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x9E37_79B9));
    // One persistent chaos link per peer: the fault process on each link
    // is continuous across gossip rounds and deterministic in
    // (seed, me, peer).
    let plan = cfg.effective_plan();
    let mut links: Vec<ChaosLink> = (0..n)
        .map(|peer| {
            let link_seed = cfg
                .seed
                .wrapping_add(((me.index() * n + peer) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ChaosLink::new(link_seed, plan.clone())
        })
        .collect();
    while running.load(Ordering::SeqCst) {
        // Sleep the gossip interval in small slices so shutdown is prompt
        // even with long intervals.
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !shared.alive.load(Ordering::SeqCst) {
            continue;
        }
        let mut peer = rng.gen_range(0..n);
        if peer == me.index() {
            peer = (peer + 1) % n;
        }
        let channel = ChannelTransport {
            peer: NodeId::from_index(peer),
            sender: &senders[peer],
            timeout: cfg.exchange_timeout,
        };
        let mut transport = ChaosTransport::new(channel, &mut links[peer]);
        let mut host = MutexHost(&shared.replica);
        // Faults and crashed peers exhaust the in-round retry policy and
        // surface as errors; gossip then just retries on the next tick.
        let result = if cfg.delta_budget > 0 {
            Engine::pull_delta_budgeted(&mut host, &mut transport, &cfg.retry, &budget)
        } else {
            Engine::pull_with(&mut host, &mut transport, &cfg.retry)
        };
        if result.is_ok() {
            shared.after_mutation();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ClusterConfig {
        ClusterConfig { gossip_interval: Duration::from_millis(1), ..ClusterConfig::default() }
    }

    #[test]
    fn updates_spread_to_all_nodes() {
        let cluster = ThreadedCluster::spawn(4, 50, fast_config());
        for i in 0..10u32 {
            cluster
                .update(NodeId((i % 4) as u16), ItemId(i), UpdateOp::set(vec![i as u8]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(20)), "did not quiesce");
        for i in 0..10u32 {
            for node in 0..4u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert_eq!(r.costs().conflicts_detected, 0);
        }
    }

    #[test]
    fn survives_message_loss() {
        let cluster = ThreadedCluster::spawn(
            3,
            20,
            ClusterConfig {
                gossip_interval: Duration::from_millis(1),
                loss_probability: 0.3,
                ..ClusterConfig::default()
            },
        );
        cluster.update(NodeId(0), ItemId(3), UpdateOp::set(&b"lossy"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)), "did not converge under loss");
        assert_eq!(cluster.read(NodeId(2), ItemId(3)).unwrap(), b"lossy");
        cluster.shutdown();
    }

    #[test]
    fn crashed_node_catches_up_after_revival() {
        // Durable mode: crash() really drops the in-memory replica and
        // revive() reconstructs it from disk before anti-entropy resumes.
        let tmp = epidb_durable::testdir::TempDir::new("threaded-crash");
        let cluster = ThreadedCluster::spawn(
            3,
            20,
            ClusterConfig {
                gossip_interval: Duration::from_millis(1),
                durability: Some(DurabilityConfig::new(tmp.path().clone())),
                ..ClusterConfig::default()
            },
        );
        cluster.update(NodeId(2), ItemId(5), UpdateOp::set(&b"pre-crash"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(20)));
        cluster.crash(NodeId(2));
        assert!(matches!(
            cluster.update(NodeId(2), ItemId(0), UpdateOp::set(&b"x"[..])),
            Err(Error::NodeDown(NodeId(2)))
        ));
        // The in-memory replica is gone: reads fail rather than serving a
        // placeholder.
        assert!(matches!(cluster.read(NodeId(2), ItemId(5)), Err(Error::NodeDown(NodeId(2)))));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(20)));
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(20)));
        // Recovered from its own WAL...
        assert_eq!(cluster.read(NodeId(2), ItemId(5)).unwrap(), b"pre-crash");
        // ...and caught up on what it missed via anti-entropy.
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }

    #[test]
    fn crashed_node_stays_stale_without_durability() {
        // Legacy simulation: the replica survives the crash in memory.
        let cluster = ThreadedCluster::spawn(3, 20, fast_config());
        cluster.crash(NodeId(2));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(20)));
        // The crashed node is excluded from quiescence and still stale.
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"");
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(20)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        cluster.shutdown();
    }

    #[test]
    fn durable_revive_restores_state_from_disk_alone() {
        // Gossip effectively disabled: after the crash nothing can refill
        // node 0 except its own disk.
        let tmp = epidb_durable::testdir::TempDir::new("threaded-disk-only");
        let cluster = ThreadedCluster::spawn(
            2,
            10,
            ClusterConfig {
                gossip_interval: Duration::from_secs(3600),
                durability: Some(DurabilityConfig::new(tmp.path().clone())),
                ..ClusterConfig::default()
            },
        );
        for i in 0..4u32 {
            cluster.update(NodeId(0), ItemId(i), UpdateOp::set(vec![i as u8; 32])).unwrap();
        }
        cluster.crash(NodeId(0));
        cluster.revive(NodeId(0));
        for i in 0..4u32 {
            assert_eq!(cluster.read(NodeId(0), ItemId(i)).unwrap(), vec![i as u8; 32]);
        }
        cluster.with_replica(NodeId(0), |r| r.check_invariants().unwrap());
        cluster.shutdown();
    }

    #[test]
    fn oob_fetch_works_live() {
        let cluster = ThreadedCluster::spawn(
            2,
            10,
            ClusterConfig {
                // Slow gossip so the OOB fetch happens before anti-entropy.
                gossip_interval: Duration::from_secs(60),
                ..ClusterConfig::default()
            },
        );
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"urgent"[..])).unwrap();
        let out = cluster.oob_fetch(NodeId(1), NodeId(0), ItemId(1)).unwrap();
        assert_eq!(out, OobOutcome::Adopted { from_aux: false });
        assert_eq!(cluster.read(NodeId(1), ItemId(1)).unwrap(), b"urgent");
        // Regular copy still old — it's an auxiliary copy.
        cluster.with_replica(NodeId(1), |r| {
            assert_eq!(r.aux_item_count(), 1);
            assert_eq!(r.read_regular(ItemId(1)).unwrap().as_bytes(), b"");
        });
        cluster.shutdown();
    }

    #[test]
    fn delta_gossip_converges() {
        let cluster = ThreadedCluster::spawn(
            3,
            20,
            ClusterConfig {
                gossip_interval: Duration::from_millis(1),
                delta_budget: 1 << 20,
                paranoid: true,
                ..ClusterConfig::default()
            },
        );
        for i in 0..6u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 64]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(20)), "no quiescence in delta mode");
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert!(r.audits_run() > 0, "paranoid audits should have run");
        }
    }

    #[test]
    fn coalesced_delta_gossip_converges() {
        // Tight budgets on both ends of every gossip link: 2 wants per
        // fetch frame, 64-byte responder payload budget — same converged
        // state, just more (smaller) frames per round.
        let cluster = ThreadedCluster::spawn(
            3,
            20,
            ClusterConfig {
                gossip_interval: Duration::from_millis(1),
                delta_budget: 1 << 20,
                paranoid: true,
                max_frame_items: 2,
                delta_frame_bytes: 64,
                ..ClusterConfig::default()
            },
        );
        for i in 0..10u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 48]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(20)), "no quiescence with tight budgets");
        for i in 0..10u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8; 48]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }

    #[test]
    fn explicit_pulls_without_gossip() {
        let cluster = ThreadedCluster::spawn(
            2,
            10,
            ClusterConfig { gossip_interval: Duration::from_secs(60), ..Default::default() },
        );
        cluster.update(NodeId(0), ItemId(2), UpdateOp::set(&b"v"[..])).unwrap();
        let out = cluster.pull_now(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(out.copied(), &[ItemId(2)]);
        assert!(matches!(cluster.pull_now(NodeId(1), NodeId(0)).unwrap(), PullOutcome::UpToDate));
        cluster.shutdown();
    }
}
