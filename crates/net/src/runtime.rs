//! The threaded cluster runtime: one OS thread per replica, crossbeam
//! channels for the network, parking_lot mutexes guarding replica state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use epidb_common::costs::wire;
use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_core::{messages::request_bytes, OobOutcome, PropagationResponse, Replica};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::NetMessage;

/// Tuning and fault-injection knobs for the threaded cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// How often each node initiates an anti-entropy pull from a random
    /// peer.
    pub gossip_interval: Duration,
    /// Probability that any message is silently dropped in transit.
    pub loss_probability: f64,
    /// Fixed delay added to every message delivery.
    pub latency: Duration,
    /// Seed for the per-node RNGs (peer choice, loss).
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            gossip_interval: Duration::from_millis(5),
            loss_probability: 0.0,
            latency: Duration::ZERO,
            seed: 0xE51D,
        }
    }
}

struct NodeShared {
    replica: Mutex<Replica>,
    alive: AtomicBool,
}

/// A running cluster of replica threads.
pub struct ThreadedCluster {
    nodes: Vec<Arc<NodeShared>>,
    senders: Vec<Sender<NetMessage>>,
    handles: Vec<JoinHandle<()>>,
    config: ClusterConfig,
}

impl ThreadedCluster {
    /// Spawn `n_nodes` replica threads over an `n_items` database.
    pub fn spawn(n_nodes: usize, n_items: usize, config: ClusterConfig) -> ThreadedCluster {
        assert!(n_nodes >= 2, "a cluster needs at least two nodes");
        let nodes: Vec<Arc<NodeShared>> = (0..n_nodes)
            .map(|i| {
                Arc::new(NodeShared {
                    replica: Mutex::new(Replica::new(NodeId::from_index(i), n_nodes, n_items)),
                    alive: AtomicBool::new(true),
                })
            })
            .collect();
        let channels: Vec<(Sender<NetMessage>, Receiver<NetMessage>)> =
            (0..n_nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<NetMessage>> = channels.iter().map(|(s, _)| s.clone()).collect();

        let mut handles = Vec::with_capacity(n_nodes);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let me = NodeId::from_index(i);
            let shared = nodes[i].clone();
            let all_nodes = nodes.clone();
            let all_senders = senders.clone();
            let cfg = config;
            handles.push(std::thread::spawn(move || {
                node_loop(me, shared, all_nodes, all_senders, rx, cfg);
            }));
        }
        ThreadedCluster { nodes, senders, handles, config }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Apply a user update at `node` (serviced by that single server, §2).
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let shared = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !shared.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        shared.replica.lock().update(item, op)
    }

    /// Read the user-visible value of `item` at `node`.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        let shared = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        Ok(shared.replica.lock().read(item)?.as_bytes().to_vec())
    }

    /// Synchronous out-of-bound fetch: `recipient` obtains `source`'s
    /// newest copy of `item` right now (the on-demand RPC of §5.2).
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        if recipient == source {
            return Ok(OobOutcome::AlreadyCurrent);
        }
        let src = self.nodes.get(source.index()).ok_or(Error::UnknownNode(source))?;
        if !src.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(source));
        }
        let reply = src.replica.lock().serve_oob(item)?;
        let dst = self.nodes.get(recipient.index()).ok_or(Error::UnknownNode(recipient))?;
        if !dst.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(recipient));
        }
        dst.replica.lock().accept_oob(source, reply)
    }

    /// Crash a node: it drops all traffic and initiates nothing until
    /// revived. Its durable state (the replica) survives, as a recovering
    /// server's disk would.
    pub fn crash(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(false, Ordering::SeqCst);
    }

    /// Revive a crashed node; anti-entropy brings it back up to date.
    pub fn revive(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(true, Ordering::SeqCst);
    }

    /// Run a closure over a locked replica (inspection).
    pub fn with_replica<T>(&self, node: NodeId, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes[node.index()].replica.lock())
    }

    /// Wait until all *alive* replicas have identical DBVVs and no
    /// auxiliary state (identical databases, by the paper's Theorem 3
    /// corollary), or the deadline passes. Returns whether quiescence was
    /// reached.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_quiescent() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.config.gossip_interval.min(Duration::from_millis(5)));
        }
    }

    fn is_quiescent(&self) -> bool {
        let alive: Vec<&Arc<NodeShared>> =
            self.nodes.iter().filter(|n| n.alive.load(Ordering::SeqCst)).collect();
        if alive.len() < 2 {
            return true;
        }
        let first = alive[0].replica.lock();
        let reference = first.dbvv().clone();
        if first.aux_item_count() > 0 {
            return false;
        }
        drop(first);
        alive[1..].iter().all(|n| {
            let r = n.replica.lock();
            r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal
        })
    }

    /// Stop all threads and return the final replicas.
    pub fn shutdown(mut self) -> Vec<Replica> {
        for s in &self.senders {
            let _ = s.send(NetMessage::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.nodes.iter().map(|n| n.replica.lock().clone()).collect()
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        for s in &self.senders {
            let _ = s.send(NetMessage::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn node_loop(
    me: NodeId,
    shared: Arc<NodeShared>,
    nodes: Vec<Arc<NodeShared>>,
    senders: Vec<Sender<NetMessage>>,
    rx: Receiver<NetMessage>,
    cfg: ClusterConfig,
) {
    let n = nodes.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x9E37_79B9));
    let send = |rng: &mut StdRng, to: NodeId, msg: NetMessage| {
        if cfg.loss_probability > 0.0 && rng.gen_bool(cfg.loss_probability) {
            return; // dropped in transit
        }
        if cfg.latency > Duration::ZERO {
            std::thread::sleep(cfg.latency);
        }
        let _ = senders[to.index()].send(msg);
    };

    loop {
        match rx.recv_timeout(cfg.gossip_interval) {
            Err(RecvTimeoutError::Timeout) => {
                // Time for scheduled anti-entropy: pull from a random peer.
                if !shared.alive.load(Ordering::SeqCst) {
                    continue;
                }
                let mut peer = rng.gen_range(0..n);
                if peer == me.index() {
                    peer = (peer + 1) % n;
                }
                let dbvv = {
                    let mut r = shared.replica.lock();
                    let dbvv = r.dbvv().clone();
                    r.charge_message(request_bytes(&dbvv), 0);
                    dbvv
                };
                send(
                    &mut rng,
                    NodeId::from_index(peer),
                    NetMessage::PullRequest { from: me, dbvv },
                );
            }
            Err(RecvTimeoutError::Disconnected) => return,
            Ok(NetMessage::Shutdown) => return,
            Ok(msg) => {
                if !shared.alive.load(Ordering::SeqCst) {
                    continue; // a crashed node drops everything
                }
                match msg {
                    NetMessage::PullRequest { from, dbvv } => {
                        let response = {
                            let mut r = shared.replica.lock();
                            let response = r.prepare_propagation(&dbvv);
                            r.charge_message(
                                wire::MSG_HEADER + response.control_bytes(),
                                response.payload_bytes(),
                            );
                            response
                        };
                        send(&mut rng, from, NetMessage::PullResponse { from: me, response });
                    }
                    NetMessage::PullResponse { from, response } => {
                        if let PropagationResponse::Payload(payload) = response {
                            let mut r = shared.replica.lock();
                            // Errors here mean a malformed payload; the
                            // runtime just drops it (as a codec layer
                            // would).
                            let _ = r.accept_propagation(from, payload);
                        }
                    }
                    NetMessage::OobRequest { from, item } => {
                        let reply = shared.replica.lock().serve_oob(item);
                        if let Ok(reply) = reply {
                            send(&mut rng, from, NetMessage::OobResponse { from: me, reply });
                        }
                    }
                    NetMessage::OobResponse { from, reply } => {
                        let _ = shared.replica.lock().accept_oob(from, reply);
                    }
                    NetMessage::Shutdown => return,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ClusterConfig {
        ClusterConfig { gossip_interval: Duration::from_millis(1), ..ClusterConfig::default() }
    }

    #[test]
    fn updates_spread_to_all_nodes() {
        let cluster = ThreadedCluster::spawn(4, 50, fast_config());
        for i in 0..10u32 {
            cluster
                .update(NodeId((i % 4) as u16), ItemId(i), UpdateOp::set(vec![i as u8]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(20)), "did not quiesce");
        for i in 0..10u32 {
            for node in 0..4u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert_eq!(r.costs().conflicts_detected, 0);
        }
    }

    #[test]
    fn survives_message_loss() {
        let cluster = ThreadedCluster::spawn(
            3,
            20,
            ClusterConfig {
                gossip_interval: Duration::from_millis(1),
                loss_probability: 0.3,
                ..ClusterConfig::default()
            },
        );
        cluster.update(NodeId(0), ItemId(3), UpdateOp::set(&b"lossy"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)), "did not converge under loss");
        assert_eq!(cluster.read(NodeId(2), ItemId(3)).unwrap(), b"lossy");
        cluster.shutdown();
    }

    #[test]
    fn crashed_node_catches_up_after_revival() {
        let cluster = ThreadedCluster::spawn(3, 20, fast_config());
        cluster.crash(NodeId(2));
        assert!(matches!(
            cluster.update(NodeId(2), ItemId(0), UpdateOp::set(&b"x"[..])),
            Err(Error::NodeDown(NodeId(2)))
        ));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(20)));
        // The crashed node is excluded from quiescence and still stale.
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"");
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(20)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        cluster.shutdown();
    }

    #[test]
    fn oob_fetch_works_live() {
        let cluster = ThreadedCluster::spawn(
            2,
            10,
            ClusterConfig {
                // Slow gossip so the OOB fetch happens before anti-entropy.
                gossip_interval: Duration::from_secs(60),
                ..ClusterConfig::default()
            },
        );
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"urgent"[..])).unwrap();
        let out = cluster.oob_fetch(NodeId(1), NodeId(0), ItemId(1)).unwrap();
        assert_eq!(out, OobOutcome::Adopted { from_aux: false });
        assert_eq!(cluster.read(NodeId(1), ItemId(1)).unwrap(), b"urgent");
        // Regular copy still old — it's an auxiliary copy.
        cluster.with_replica(NodeId(1), |r| {
            assert_eq!(r.aux_item_count(), 1);
            assert_eq!(r.read_regular(ItemId(1)).unwrap().as_bytes(), b"");
        });
        cluster.shutdown();
    }
}
