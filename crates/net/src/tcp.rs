//! A TCP runtime: the same protocol, over real sockets on localhost.
//!
//! Each replica gets a listener thread (spawning one serving thread per
//! accepted connection) and a gossip thread (periodically connecting to a
//! random peer and pulling). Frames are a 4-byte little-endian length
//! followed by a [`codec`](epidb_core::codec)-encoded engine enum — the
//! socket carries exactly the [`ProtocolRequest`] / [`ProtocolResponse`]
//! pairs every other runtime exchanges, and the byte counts charged by
//! [`Costs`](epidb_common::Costs) inside the engine correspond to what
//! actually crosses the wire.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_core::codec::{decode_request, decode_response, encode_request, encode_response};
use epidb_core::{
    Engine, OobOutcome, ProtocolRequest, ProtocolResponse, PullOutcome, Replica, Transport,
};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::transport::{FaultInjector, MutexHost};

/// Maximum accepted frame size (64 MiB) — guards against corrupt length
/// prefixes.
const MAX_FRAME: u32 = 64 << 20;

/// Tuning and fault-injection knobs for the TCP cluster.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// How often each node initiates a pull from a random peer.
    pub gossip_interval: Duration,
    /// Seed for peer selection and loss injection.
    pub seed: u64,
    /// Probability that either leg of a gossip exchange is dropped (the
    /// response is still read off the socket, then discarded — a loss on
    /// the return path, not a protocol error).
    pub loss_probability: f64,
    /// Op-cache budget per replica; when non-zero, gossip runs in delta
    /// mode.
    pub delta_budget: usize,
    /// Run every replica in paranoid mode (per-step invariant audits).
    pub paranoid: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            gossip_interval: Duration::from_millis(5),
            seed: 0x7C9,
            loss_probability: 0.0,
            delta_budget: 0,
            paranoid: false,
        }
    }
}

struct TcpNode {
    replica: Mutex<Replica>,
    alive: AtomicBool,
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> Result<()> {
    let write = |s: &mut TcpStream| {
        s.write_all(&(body.len() as u32).to_le_bytes())?;
        s.write_all(body)?;
        s.flush()
    };
    write(stream).map_err(|e| Error::Network(format!("send frame: {e}")))
}

fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream
        .read_exact(&mut len_buf)
        .map_err(|e| Error::Network(format!("read frame length: {e}")))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(Error::Network(format!("frame of {len} bytes exceeds limit")));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(|e| Error::Network(format!("read frame body: {e}")))?;
    Ok(body)
}

/// A [`Transport`] over a TCP connection to one peer's server: each
/// exchange writes a request frame and reads a response frame. The
/// connection is opened lazily and reused across the exchanges of a sync
/// round; any I/O error discards it so the next exchange reconnects.
pub struct TcpTransport {
    peer: NodeId,
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl TcpTransport {
    /// A transport to the server of `peer` listening at `addr`.
    pub fn new(peer: NodeId, addr: SocketAddr) -> TcpTransport {
        TcpTransport { peer, addr, stream: None }
    }

    fn connect(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500))
                .map_err(|e| Error::Network(format!("connect {}: {e}", self.addr)))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .map_err(|e| Error::Network(format!("socket option: {e}")))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }
}

impl Transport for TcpTransport {
    fn peer(&self) -> NodeId {
        self.peer
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        let round = |stream: &mut TcpStream| -> Result<ProtocolResponse> {
            write_frame(stream, &encode_request(&req))?;
            decode_response(&read_frame(stream)?)
        };
        let stream = self.connect()?;
        let resp = match round(stream) {
            Ok(resp) => resp,
            Err(e) => {
                // The connection is in an unknown state; reconnect next time.
                self.stream = None;
                return Err(e);
            }
        };
        match resp {
            ProtocolResponse::Error(msg) => Err(Error::Network(format!("peer error: {msg}"))),
            resp => Ok(resp),
        }
    }
}

/// A cluster of replicas gossiping over localhost TCP.
pub struct TcpCluster {
    nodes: Vec<Arc<TcpNode>>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    config: TcpConfig,
}

impl TcpCluster {
    /// Bind `n_nodes` listeners on localhost and start gossiping.
    pub fn spawn(n_nodes: usize, n_items: usize, config: TcpConfig) -> Result<TcpCluster> {
        assert!(n_nodes >= 2);
        let running = Arc::new(AtomicBool::new(true));
        let nodes: Vec<Arc<TcpNode>> = (0..n_nodes)
            .map(|i| {
                let mut replica = Replica::new(NodeId::from_index(i), n_nodes, n_items);
                if config.delta_budget > 0 {
                    replica.enable_delta(config.delta_budget);
                }
                replica.set_paranoid(config.paranoid);
                Arc::new(TcpNode { replica: Mutex::new(replica), alive: AtomicBool::new(true) })
            })
            .collect();

        // Bind all listeners first so every gossip thread knows every addr.
        let listeners: Vec<TcpListener> = (0..n_nodes)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("local_addr: {e}")))?;

        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            // Listener thread.
            let node = nodes[i].clone();
            let run = running.clone();
            handles.push(std::thread::spawn(move || server_loop(listener, node, run)));
            // Gossip thread.
            let node = nodes[i].clone();
            let run = running.clone();
            let peer_addrs = addrs.clone();
            let me = NodeId::from_index(i);
            let cfg = config;
            handles.push(std::thread::spawn(move || gossip_loop(me, node, peer_addrs, run, cfg)));
        }
        Ok(TcpCluster { nodes, addrs, running, handles, config })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The socket address a node's replica server listens on.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// Apply a user update at `node`.
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let n = self.checked(node)?;
        n.replica.lock().update(item, op)
    }

    /// Read the user-visible value at `node`.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        Ok(n.replica.lock().read(item)?.as_bytes().to_vec())
    }

    fn checked(&self, node: NodeId) -> Result<&Arc<TcpNode>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n)
    }

    /// Out-of-bound fetch over TCP, driven through the engine like every
    /// other exchange.
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        if recipient == source {
            return Ok(OobOutcome::AlreadyCurrent);
        }
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = TcpTransport::new(source, self.addr(source));
        Engine::oob(&mut MutexHost(&node.replica), &mut transport, item)
    }

    /// Run one whole-item pull right now (`recipient` from `source`),
    /// bypassing the gossip schedule — deterministic schedules for tests.
    pub fn pull_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = TcpTransport::new(source, self.addr(source));
        Engine::pull(&mut MutexHost(&node.replica), &mut transport)
    }

    /// As [`pull_now`](Self::pull_now), in delta mode.
    pub fn pull_delta_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = TcpTransport::new(source, self.addr(source));
        Engine::pull_delta(&mut MutexHost(&node.replica), &mut transport)
    }

    /// Crash / revive a node (it refuses connections and stops gossiping
    /// while down; durable state survives).
    pub fn crash(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(false, Ordering::SeqCst);
    }

    /// Revive a crashed node.
    pub fn revive(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(true, Ordering::SeqCst);
    }

    /// Run a closure over a locked replica.
    pub fn with_replica<T>(&self, node: NodeId, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes[node.index()].replica.lock())
    }

    /// Wait until all alive replicas hold equal DBVVs and no auxiliary
    /// state remains, or the deadline passes.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let alive: Vec<&Arc<TcpNode>> =
                self.nodes.iter().filter(|n| n.alive.load(Ordering::SeqCst)).collect();
            let quiet = if alive.len() < 2 {
                true
            } else {
                let first = alive[0].replica.lock();
                let reference = first.dbvv().clone();
                let head_ok = first.aux_item_count() == 0;
                drop(first);
                head_ok
                    && alive[1..].iter().all(|n| {
                        let r = n.replica.lock();
                        r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal
                    })
            };
            if quiet {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.config.gossip_interval.min(Duration::from_millis(5)));
        }
    }

    /// Stop all threads and return the final replicas.
    pub fn shutdown(mut self) -> Vec<Replica> {
        self.stop();
        self.nodes.iter().map(|n| n.replica.lock().clone()).collect()
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock every accept loop with a dummy connection.
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        if self.running.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn server_loop(listener: TcpListener, node: Arc<TcpNode>, running: Arc<AtomicBool>) {
    while running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if !running.load(Ordering::SeqCst) {
            return;
        }
        let node = node.clone();
        let run = running.clone();
        std::thread::spawn(move || serve_conn(stream, node, run));
    }
}

/// Serve one connection: a loop of request frame → [`Engine::handle`] →
/// response frame. A crashed node drops the connection without replying.
fn serve_conn(mut stream: TcpStream, node: Arc<TcpNode>, running: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    loop {
        if !running.load(Ordering::SeqCst) || !node.alive.load(Ordering::SeqCst) {
            return;
        }
        let Ok(body) = read_frame(&mut stream) else {
            return; // peer closed, timed out, or sent garbage
        };
        if !node.alive.load(Ordering::SeqCst) {
            return; // crashed between frames: silently drop
        }
        let resp = match decode_request(&body) {
            Ok(req) => Engine::handle(&mut node.replica.lock(), req)
                .unwrap_or_else(|e| ProtocolResponse::Error(e.to_string())),
            Err(e) => ProtocolResponse::Error(format!("bad request: {e}")),
        };
        if write_frame(&mut stream, &encode_response(&resp)).is_err() {
            return;
        }
    }
}

fn gossip_loop(
    me: NodeId,
    node: Arc<TcpNode>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    let n = addrs.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x51_7C_C1));
    while running.load(Ordering::SeqCst) {
        // Sleep the gossip interval in small slices so shutdown is prompt
        // even with long intervals.
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !node.alive.load(Ordering::SeqCst) {
            continue;
        }
        let mut peer = rng.gen_range(0..n);
        if peer == me.index() {
            peer = (peer + 1) % n;
        }
        let tcp = TcpTransport::new(NodeId::from_index(peer), addrs[peer]);
        let mut transport = FaultInjector::new(tcp, &mut rng, cfg.loss_probability, Duration::ZERO);
        let mut host = MutexHost(&node.replica);
        // Connection failures and injected loss surface as errors; gossip
        // just retries on the next tick.
        let _ = if cfg.delta_budget > 0 {
            Engine::pull_delta(&mut host, &mut transport)
        } else {
            Engine::pull(&mut host, &mut transport)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_converge_over_real_sockets() {
        let cluster = TcpCluster::spawn(
            3,
            50,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        for i in 0..12u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8 + 1]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence over TCP");
        for i in 0..12u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8 + 1]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert_eq!(r.costs().conflicts_detected, 0);
        }
    }

    #[test]
    fn oob_fetch_over_tcp() {
        let cluster = TcpCluster::spawn(
            2,
            10,
            TcpConfig { gossip_interval: Duration::from_secs(60), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"wire"[..])).unwrap();
        let out = cluster.oob_fetch(NodeId(1), NodeId(0), ItemId(1)).unwrap();
        assert_eq!(out, OobOutcome::Adopted { from_aux: false });
        assert_eq!(cluster.read(NodeId(1), ItemId(1)).unwrap(), b"wire");
        cluster.shutdown();
    }

    #[test]
    fn crashed_node_refuses_and_recovers() {
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.crash(NodeId(2));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"");
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        cluster.shutdown();
    }

    #[test]
    fn delta_gossip_over_tcp_converges() {
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig {
                gossip_interval: Duration::from_millis(2),
                delta_budget: 1 << 20,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        for i in 0..6u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 32]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence in TCP delta mode");
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }
}
