//! A TCP runtime: the same protocol, over real sockets on localhost.
//!
//! Each replica gets a listener thread (spawning one serving thread per
//! accepted connection) and a gossip thread (periodically connecting to a
//! random peer and pulling). Frames are a 4-byte little-endian length
//! followed by a [`codec`](epidb_core::codec)-encoded engine enum — the
//! socket carries exactly the [`ProtocolRequest`] / [`ProtocolResponse`]
//! pairs every other runtime exchanges, and the byte counts charged by
//! [`Costs`](epidb_common::Costs) inside the engine correspond to what
//! actually crosses the wire.

use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_core::codec::{
    decode_request, decode_response_shared, encode_request_to, encode_response_to, Writer,
};
use epidb_core::{
    Engine, OobOutcome, ProtocolRequest, ProtocolResponse, PullOutcome, Replica, Transport,
};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::transport::{FaultInjector, MutexHost};

/// Maximum accepted frame size (64 MiB) — guards against corrupt length
/// prefixes.
const MAX_FRAME: u32 = 64 << 20;

/// Tuning and fault-injection knobs for the TCP cluster.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// How often each node initiates a pull from a random peer.
    pub gossip_interval: Duration,
    /// Seed for peer selection and loss injection.
    pub seed: u64,
    /// Probability that either leg of a gossip exchange is dropped (the
    /// response is still read off the socket, then discarded — a loss on
    /// the return path, not a protocol error).
    pub loss_probability: f64,
    /// Op-cache budget per replica; when non-zero, gossip runs in delta
    /// mode.
    pub delta_budget: usize,
    /// Run every replica in paranoid mode (per-step invariant audits).
    pub paranoid: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            gossip_interval: Duration::from_millis(5),
            seed: 0x7C9,
            loss_probability: 0.0,
            delta_budget: 0,
            paranoid: false,
        }
    }
}

struct TcpNode {
    replica: Mutex<Replica>,
    alive: AtomicBool,
}

/// Write every byte of `bufs` with as few syscalls as the kernel allows:
/// repeated `write_vectored`, advancing through the slice list by hand
/// (std's `write_all_vectored` is unstable). In the common case the whole
/// frame — length prefix, control bytes, and value segments straight out
/// of the store's refcounted buffers — leaves in one call.
fn write_all_vectored(stream: &mut TcpStream, mut bufs: Vec<&[u8]>) -> std::io::Result<()> {
    while !bufs.is_empty() {
        let iov: Vec<IoSlice<'_>> = bufs.iter().map(|b| IoSlice::new(b)).collect();
        let mut n = stream.write_vectored(&iov)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        let mut done = 0;
        while done < bufs.len() && n >= bufs[done].len() {
            n -= bufs[done].len();
            done += 1;
        }
        bufs.drain(..done);
        if let Some(first) = bufs.first_mut() {
            *first = &first[n..];
        }
    }
    stream.flush()
}

/// Send one frame: a 4-byte little-endian length followed by the writer's
/// chunks, in a single vectored write — value segments are never copied
/// into a contiguous send buffer.
fn write_frame(stream: &mut TcpStream, w: &Writer) -> Result<()> {
    let len = (w.len() as u32).to_le_bytes();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(8);
    bufs.push(&len);
    bufs.extend(w.chunks());
    write_all_vectored(stream, bufs).map_err(|e| Error::Network(format!("send frame: {e}")))
}

/// Read one frame body into `body` (reused across frames; only grows).
fn read_frame_into(stream: &mut TcpStream, body: &mut Vec<u8>) -> Result<()> {
    let mut len_buf = [0u8; 4];
    stream
        .read_exact(&mut len_buf)
        .map_err(|e| Error::Network(format!("read frame length: {e}")))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(Error::Network(format!("frame of {len} bytes exceeds limit")));
    }
    body.clear();
    body.resize(len as usize, 0);
    stream.read_exact(body).map_err(|e| Error::Network(format!("read frame body: {e}")))?;
    Ok(())
}

/// Read one frame into a fresh buffer, for response frames: the buffer
/// becomes the shared backing of the decoded message
/// ([`decode_response_shared`] slices values out of it instead of copying).
fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>> {
    let mut body = Vec::new();
    read_frame_into(stream, &mut body)?;
    Ok(body)
}

/// A [`Transport`] over a TCP connection to one peer's server: each
/// exchange writes a request frame and reads a response frame. The
/// connection is opened lazily and reused across the exchanges of a sync
/// round; any I/O error discards it so the next exchange reconnects.
pub struct TcpTransport {
    peer: NodeId,
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Reusable request encoder: after the first exchange, encoding a
    /// request performs no allocations.
    writer: Writer,
}

impl TcpTransport {
    /// A transport to the server of `peer` listening at `addr`.
    pub fn new(peer: NodeId, addr: SocketAddr) -> TcpTransport {
        TcpTransport { peer, addr, stream: None, writer: Writer::new() }
    }

    fn connect(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500))
                .map_err(|e| Error::Network(format!("connect {}: {e}", self.addr)))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .map_err(|e| Error::Network(format!("socket option: {e}")))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }
}

impl Transport for TcpTransport {
    fn peer(&self) -> NodeId {
        self.peer
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        encode_request_to(&req, &mut self.writer);
        self.connect()?;
        let writer = &self.writer;
        let stream = self.stream.as_mut().expect("just connected");
        let round = |stream: &mut TcpStream| -> Result<ProtocolResponse> {
            write_frame(stream, writer)?;
            // The received frame becomes the shared backing of the decoded
            // response: values are zero-copy sub-views of it.
            let frame = Bytes::from(read_frame(stream)?);
            decode_response_shared(&frame)
        };
        let resp = match round(stream) {
            Ok(resp) => resp,
            Err(e) => {
                // The connection is in an unknown state; reconnect next time.
                self.stream = None;
                return Err(e);
            }
        };
        match resp {
            ProtocolResponse::Error(msg) => Err(Error::Network(format!("peer error: {msg}"))),
            resp => Ok(resp),
        }
    }
}

/// A cluster of replicas gossiping over localhost TCP.
pub struct TcpCluster {
    nodes: Vec<Arc<TcpNode>>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    config: TcpConfig,
}

impl TcpCluster {
    /// Bind `n_nodes` listeners on localhost and start gossiping.
    pub fn spawn(n_nodes: usize, n_items: usize, config: TcpConfig) -> Result<TcpCluster> {
        assert!(n_nodes >= 2);
        let running = Arc::new(AtomicBool::new(true));
        let nodes: Vec<Arc<TcpNode>> = (0..n_nodes)
            .map(|i| {
                let mut replica = Replica::new(NodeId::from_index(i), n_nodes, n_items);
                if config.delta_budget > 0 {
                    replica.enable_delta(config.delta_budget);
                }
                replica.set_paranoid(config.paranoid);
                Arc::new(TcpNode { replica: Mutex::new(replica), alive: AtomicBool::new(true) })
            })
            .collect();

        // Bind all listeners first so every gossip thread knows every addr.
        let listeners: Vec<TcpListener> = (0..n_nodes)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("local_addr: {e}")))?;

        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            // Listener thread.
            let node = nodes[i].clone();
            let run = running.clone();
            handles.push(std::thread::spawn(move || server_loop(listener, node, run)));
            // Gossip thread.
            let node = nodes[i].clone();
            let run = running.clone();
            let peer_addrs = addrs.clone();
            let me = NodeId::from_index(i);
            let cfg = config;
            handles.push(std::thread::spawn(move || gossip_loop(me, node, peer_addrs, run, cfg)));
        }
        Ok(TcpCluster { nodes, addrs, running, handles, config })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The socket address a node's replica server listens on.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// Apply a user update at `node`.
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let n = self.checked(node)?;
        n.replica.lock().update(item, op)
    }

    /// Read the user-visible value at `node`.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        Ok(n.replica.lock().read(item)?.as_bytes().to_vec())
    }

    fn checked(&self, node: NodeId) -> Result<&Arc<TcpNode>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n)
    }

    /// Out-of-bound fetch over TCP, driven through the engine like every
    /// other exchange.
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        if recipient == source {
            return Ok(OobOutcome::AlreadyCurrent);
        }
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = TcpTransport::new(source, self.addr(source));
        Engine::oob(&mut MutexHost(&node.replica), &mut transport, item)
    }

    /// Run one whole-item pull right now (`recipient` from `source`),
    /// bypassing the gossip schedule — deterministic schedules for tests.
    pub fn pull_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = TcpTransport::new(source, self.addr(source));
        Engine::pull(&mut MutexHost(&node.replica), &mut transport)
    }

    /// As [`pull_now`](Self::pull_now), in delta mode.
    pub fn pull_delta_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = TcpTransport::new(source, self.addr(source));
        Engine::pull_delta(&mut MutexHost(&node.replica), &mut transport)
    }

    /// Crash / revive a node (it refuses connections and stops gossiping
    /// while down; durable state survives).
    pub fn crash(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(false, Ordering::SeqCst);
    }

    /// Revive a crashed node.
    pub fn revive(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(true, Ordering::SeqCst);
    }

    /// Run a closure over a locked replica.
    pub fn with_replica<T>(&self, node: NodeId, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes[node.index()].replica.lock())
    }

    /// Wait until all alive replicas hold equal DBVVs and no auxiliary
    /// state remains, or the deadline passes.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let alive: Vec<&Arc<TcpNode>> =
                self.nodes.iter().filter(|n| n.alive.load(Ordering::SeqCst)).collect();
            let quiet = if alive.len() < 2 {
                true
            } else {
                let first = alive[0].replica.lock();
                let reference = first.dbvv().clone();
                let head_ok = first.aux_item_count() == 0;
                drop(first);
                head_ok
                    && alive[1..].iter().all(|n| {
                        let r = n.replica.lock();
                        r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal
                    })
            };
            if quiet {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.config.gossip_interval.min(Duration::from_millis(5)));
        }
    }

    /// Stop all threads and return the final replicas.
    pub fn shutdown(mut self) -> Vec<Replica> {
        self.stop();
        self.nodes.iter().map(|n| n.replica.lock().clone()).collect()
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock every accept loop with a dummy connection.
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        if self.running.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn server_loop(listener: TcpListener, node: Arc<TcpNode>, running: Arc<AtomicBool>) {
    while running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if !running.load(Ordering::SeqCst) {
            return;
        }
        let node = node.clone();
        let run = running.clone();
        std::thread::spawn(move || serve_conn(stream, node, run));
    }
}

/// Serve one connection: a loop of request frame → [`Engine::handle`] →
/// response frame. A crashed node drops the connection without replying.
fn serve_conn(mut stream: TcpStream, node: Arc<TcpNode>, running: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    // Per-connection reusable buffers: request frames land in `body`,
    // responses encode into `writer` — in steady state a served exchange
    // allocates nothing on the control path and ships values as refcounted
    // segments in one vectored write.
    let mut body = Vec::new();
    let mut writer = Writer::new();
    loop {
        if !running.load(Ordering::SeqCst) || !node.alive.load(Ordering::SeqCst) {
            return;
        }
        if read_frame_into(&mut stream, &mut body).is_err() {
            return; // peer closed, timed out, or sent garbage
        }
        if !node.alive.load(Ordering::SeqCst) {
            return; // crashed between frames: silently drop
        }
        let resp = match decode_request(&body) {
            Ok(req) => Engine::handle(&mut node.replica.lock(), req)
                .unwrap_or_else(|e| ProtocolResponse::Error(e.to_string())),
            Err(e) => ProtocolResponse::Error(format!("bad request: {e}")),
        };
        encode_response_to(&resp, &mut writer);
        if write_frame(&mut stream, &writer).is_err() {
            return;
        }
    }
}

fn gossip_loop(
    me: NodeId,
    node: Arc<TcpNode>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    let n = addrs.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x51_7C_C1));
    while running.load(Ordering::SeqCst) {
        // Sleep the gossip interval in small slices so shutdown is prompt
        // even with long intervals.
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !node.alive.load(Ordering::SeqCst) {
            continue;
        }
        let mut peer = rng.gen_range(0..n);
        if peer == me.index() {
            peer = (peer + 1) % n;
        }
        let tcp = TcpTransport::new(NodeId::from_index(peer), addrs[peer]);
        let mut transport = FaultInjector::new(tcp, &mut rng, cfg.loss_probability, Duration::ZERO);
        let mut host = MutexHost(&node.replica);
        // Connection failures and injected loss surface as errors; gossip
        // just retries on the next tick.
        let _ = if cfg.delta_budget > 0 {
            Engine::pull_delta(&mut host, &mut transport)
        } else {
            Engine::pull(&mut host, &mut transport)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_converge_over_real_sockets() {
        let cluster = TcpCluster::spawn(
            3,
            50,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        for i in 0..12u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8 + 1]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence over TCP");
        for i in 0..12u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8 + 1]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert_eq!(r.costs().conflicts_detected, 0);
        }
    }

    #[test]
    fn oob_fetch_over_tcp() {
        let cluster = TcpCluster::spawn(
            2,
            10,
            TcpConfig { gossip_interval: Duration::from_secs(60), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"wire"[..])).unwrap();
        let out = cluster.oob_fetch(NodeId(1), NodeId(0), ItemId(1)).unwrap();
        assert_eq!(out, OobOutcome::Adopted { from_aux: false });
        assert_eq!(cluster.read(NodeId(1), ItemId(1)).unwrap(), b"wire");
        cluster.shutdown();
    }

    #[test]
    fn crashed_node_refuses_and_recovers() {
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.crash(NodeId(2));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"");
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        cluster.shutdown();
    }

    #[test]
    fn delta_gossip_over_tcp_converges() {
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig {
                gossip_interval: Duration::from_millis(2),
                delta_budget: 1 << 20,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        for i in 0..6u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 32]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence in TCP delta mode");
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }
}
