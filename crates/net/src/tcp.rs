//! A TCP runtime: the same protocol, over real sockets on localhost.
//!
//! Each replica gets a listener thread (serving pull and out-of-bound
//! requests as framed request/response exchanges) and a gossip thread
//! (periodically connecting to a random peer and pulling). Frames are a
//! 4-byte little-endian length followed by a [`codec`]-encoded message —
//! the byte counts charged by [`Costs`](epidb_common::Costs) correspond to
//! what actually crosses the socket.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epidb_common::costs::wire;
use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_core::codec::{decode_message, encode_message, WireMessage};
use epidb_core::messages::request_bytes;
use epidb_core::{OobOutcome, PropagationResponse, Replica};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum accepted frame size (64 MiB) — guards against corrupt length
/// prefixes.
const MAX_FRAME: u32 = 64 << 20;

/// Tuning for the TCP cluster.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// How often each node initiates a pull from a random peer.
    pub gossip_interval: Duration,
    /// Seed for peer selection.
    pub seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig { gossip_interval: Duration::from_millis(5), seed: 0x7C9 }
    }
}

struct TcpNode {
    replica: Mutex<Replica>,
    alive: AtomicBool,
}

/// A cluster of replicas gossiping over localhost TCP.
pub struct TcpCluster {
    nodes: Vec<Arc<TcpNode>>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    config: TcpConfig,
}

/// Write one length-prefixed frame.
pub fn write_frame(stream: &mut TcpStream, msg: &WireMessage) -> std::io::Result<()> {
    let body = encode_message(msg);
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

/// Read one length-prefixed frame.
pub fn read_frame(stream: &mut TcpStream) -> Result<WireMessage> {
    let mut len_buf = [0u8; 4];
    stream
        .read_exact(&mut len_buf)
        .map_err(|e| Error::Network(format!("read frame length: {e}")))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(Error::Network(format!("frame of {len} bytes exceeds limit")));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(|e| Error::Network(format!("read frame body: {e}")))?;
    decode_message(&body)
}

impl TcpCluster {
    /// Bind `n_nodes` listeners on localhost and start gossiping.
    pub fn spawn(n_nodes: usize, n_items: usize, config: TcpConfig) -> Result<TcpCluster> {
        assert!(n_nodes >= 2);
        let running = Arc::new(AtomicBool::new(true));
        let nodes: Vec<Arc<TcpNode>> = (0..n_nodes)
            .map(|i| {
                Arc::new(TcpNode {
                    replica: Mutex::new(Replica::new(NodeId::from_index(i), n_nodes, n_items)),
                    alive: AtomicBool::new(true),
                })
            })
            .collect();

        // Bind all listeners first so every gossip thread knows every addr.
        let listeners: Vec<TcpListener> = (0..n_nodes)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("local_addr: {e}")))?;

        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            // Server thread.
            let node = nodes[i].clone();
            let run = running.clone();
            handles.push(std::thread::spawn(move || server_loop(listener, node, run)));
            // Gossip thread.
            let node = nodes[i].clone();
            let run = running.clone();
            let peer_addrs = addrs.clone();
            let me = NodeId::from_index(i);
            let cfg = config;
            handles.push(std::thread::spawn(move || gossip_loop(me, node, peer_addrs, run, cfg)));
        }
        Ok(TcpCluster { nodes, addrs, running, handles, config })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The socket address a node's replica server listens on.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// Apply a user update at `node`.
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        n.replica.lock().update(item, op)
    }

    /// Read the user-visible value at `node`.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        Ok(n.replica.lock().read(item)?.as_bytes().to_vec())
    }

    /// Out-of-bound fetch over TCP: connect to the source's server, send
    /// the request frame, apply the reply.
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        let addr = self.addr(source);
        let mut stream =
            TcpStream::connect(addr).map_err(|e| Error::Network(format!("connect {addr}: {e}")))?;
        write_frame(&mut stream, &WireMessage::OobRequest { from: recipient, item })
            .map_err(|e| Error::Network(format!("send oob request: {e}")))?;
        match read_frame(&mut stream)? {
            WireMessage::OobResponse { from, reply } => {
                let node =
                    self.nodes.get(recipient.index()).ok_or(Error::UnknownNode(recipient))?;
                node.replica.lock().accept_oob(from, reply)
            }
            other => Err(Error::Network(format!("unexpected reply {other:?}"))),
        }
    }

    /// Crash / revive a node (it refuses connections and stops gossiping
    /// while down; durable state survives).
    pub fn crash(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(false, Ordering::SeqCst);
    }

    /// Revive a crashed node.
    pub fn revive(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(true, Ordering::SeqCst);
    }

    /// Run a closure over a locked replica.
    pub fn with_replica<T>(&self, node: NodeId, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes[node.index()].replica.lock())
    }

    /// Wait until all alive replicas hold equal DBVVs and no auxiliary
    /// state remains, or the deadline passes.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let alive: Vec<&Arc<TcpNode>> =
                self.nodes.iter().filter(|n| n.alive.load(Ordering::SeqCst)).collect();
            let quiet = if alive.len() < 2 {
                true
            } else {
                let first = alive[0].replica.lock();
                let reference = first.dbvv().clone();
                let head_ok = first.aux_item_count() == 0;
                drop(first);
                head_ok
                    && alive[1..].iter().all(|n| {
                        let r = n.replica.lock();
                        r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal
                    })
            };
            if quiet {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.config.gossip_interval.min(Duration::from_millis(5)));
        }
    }

    /// Stop all threads and return the final replicas.
    pub fn shutdown(mut self) -> Vec<Replica> {
        self.stop();
        self.nodes.iter().map(|n| n.replica.lock().clone()).collect()
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock every accept loop with a dummy connection.
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        if self.running.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn server_loop(listener: TcpListener, node: Arc<TcpNode>, running: Arc<AtomicBool>) {
    while running.load(Ordering::SeqCst) {
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        if !running.load(Ordering::SeqCst) {
            return;
        }
        if !node.alive.load(Ordering::SeqCst) {
            continue; // crashed: drop the connection
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let Ok(msg) = read_frame(&mut stream) else {
            continue;
        };
        match msg {
            WireMessage::PullRequest { from: _, dbvv } => {
                let (me, response) = {
                    let mut r = node.replica.lock();
                    let response = r.prepare_propagation(&dbvv);
                    r.charge_message(
                        wire::MSG_HEADER + response.control_bytes(),
                        response.payload_bytes(),
                    );
                    (r.id(), response)
                };
                let _ = write_frame(&mut stream, &WireMessage::PullResponse { from: me, response });
            }
            WireMessage::OobRequest { from: _, item } => {
                let (me, reply) = {
                    let r = node.replica.lock();
                    (r.id(), r.serve_oob(item))
                };
                if let Ok(reply) = reply {
                    let _ = write_frame(&mut stream, &WireMessage::OobResponse { from: me, reply });
                }
            }
            // Requests only; responses arrive on the initiating connection.
            WireMessage::PullResponse { .. } | WireMessage::OobResponse { .. } => {}
        }
    }
}

fn gossip_loop(
    me: NodeId,
    node: Arc<TcpNode>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    let n = addrs.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x51_7C_C1));
    while running.load(Ordering::SeqCst) {
        // Sleep the gossip interval in small slices so shutdown is prompt
        // even with long intervals.
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !node.alive.load(Ordering::SeqCst) {
            continue;
        }
        let mut peer = rng.gen_range(0..n);
        if peer == me.index() {
            peer = (peer + 1) % n;
        }
        let dbvv = {
            let mut r = node.replica.lock();
            let dbvv = r.dbvv().clone();
            r.charge_message(request_bytes(&dbvv), 0);
            dbvv
        };
        let Ok(mut stream) = TcpStream::connect_timeout(&addrs[peer], Duration::from_millis(500))
        else {
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        if write_frame(&mut stream, &WireMessage::PullRequest { from: me, dbvv }).is_err() {
            continue;
        }
        let Ok(WireMessage::PullResponse { from, response }) = read_frame(&mut stream) else {
            continue;
        };
        if let PropagationResponse::Payload(payload) = response {
            let mut r = node.replica.lock();
            let _ = r.accept_propagation(from, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_converge_over_real_sockets() {
        let cluster = TcpCluster::spawn(
            3,
            50,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        for i in 0..12u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8 + 1]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence over TCP");
        for i in 0..12u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8 + 1]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert_eq!(r.costs().conflicts_detected, 0);
        }
    }

    #[test]
    fn oob_fetch_over_tcp() {
        let cluster = TcpCluster::spawn(
            2,
            10,
            TcpConfig { gossip_interval: Duration::from_secs(60), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"wire"[..])).unwrap();
        let out = cluster.oob_fetch(NodeId(1), NodeId(0), ItemId(1)).unwrap();
        assert_eq!(out, OobOutcome::Adopted { from_aux: false });
        assert_eq!(cluster.read(NodeId(1), ItemId(1)).unwrap(), b"wire");
        cluster.shutdown();
    }

    #[test]
    fn crashed_node_refuses_and_recovers() {
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.crash(NodeId(2));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"");
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        cluster.shutdown();
    }
}
