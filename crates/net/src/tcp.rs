//! A TCP runtime: the same protocol, over real sockets on localhost.
//!
//! Each replica gets a listener thread (spawning one serving thread per
//! accepted connection) and a gossip thread (periodically connecting to a
//! random peer and pulling). Frames are a 4-byte little-endian length
//! followed by the checked envelope of [`codec`](epidb_core::codec): a
//! CRC32 over the encoded engine enum, then the encoding itself — the
//! socket carries exactly the [`ProtocolRequest`] / [`ProtocolResponse`]
//! pairs every other runtime exchanges, every frame is verified before it
//! is decoded (corruption surfaces as the retryable
//! [`Error::CorruptFrame`]), and the byte counts charged by
//! [`Costs`](epidb_common::Costs) inside the engine correspond to what
//! actually crosses the wire.

use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_core::codec::{
    check_frame_len, decode_request_checked, decode_response_checked_shared, encode_request_to,
    encode_response_to, DecodeScratch, Writer, CHECKED_HEADER, MAX_FRAME,
};
use epidb_core::{
    ChaosLink, ChaosTransport, Engine, FaultPlan, GossipBudget, OobOutcome, ProtocolRequest,
    ProtocolResponse, PullOutcome, Replica, RetryPolicy, Transport,
};
use epidb_durable::{DurabilityConfig, NodeDurability};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::runtime::open_durable_node;
use crate::transport::MutexHost;

/// Socket-level tuning for [`TcpTransport`]: every timeout the transport
/// applies, plus the connect retry schedule. No hardcoded timeouts remain
/// in the transport itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpSocketOptions {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (both the initiator awaiting a response and
    /// the server awaiting the next request).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Connect attempts before giving up with
    /// [`Error::PeerUnavailable`].
    pub connect_attempts: u32,
    /// Base pause between connect attempts (doubles per failure).
    pub connect_backoff: Duration,
}

impl Default for TcpSocketOptions {
    fn default() -> Self {
        TcpSocketOptions {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(10),
        }
    }
}

/// Tuning and fault-injection knobs for the TCP cluster.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// How often each node initiates a pull from a random peer.
    pub gossip_interval: Duration,
    /// Seed for peer selection and per-link chaos.
    pub seed: u64,
    /// Probability that either leg of a gossip exchange is dropped
    /// (shorthand for a [`FaultPlan::lossy`] plan; ignored when
    /// `fault_plan` is set).
    pub loss_probability: f64,
    /// Op-cache budget per replica; when non-zero, gossip runs in delta
    /// mode.
    pub delta_budget: usize,
    /// Run every replica in paranoid mode (per-step invariant audits).
    pub paranoid: bool,
    /// Socket timeouts and connect retry schedule.
    pub socket: TcpSocketOptions,
    /// Full fault mix for gossip links; overrides `loss_probability`
    /// when set.
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy the gossip loop applies within each anti-entropy
    /// round (between rounds, the next tick is the retry).
    pub retry: RetryPolicy,
    /// On-disk durability (WAL + snapshot checkpoints) per node. When
    /// set, [`crash`](TcpCluster::crash) really drops the in-memory
    /// replica and [`revive`](TcpCluster::revive) recovers it from disk.
    pub durability: Option<DurabilityConfig>,
    /// Maximum wanted items per `DeltaFetch` frame in delta gossip
    /// rounds (`usize::MAX` = no coalescing: the exchange shape — and
    /// therefore the per-node [`Costs`](epidb_common::Costs) — matches
    /// the unchunked protocol).
    pub max_frame_items: usize,
    /// Responder-side byte budget per delta payload frame (`u64::MAX` =
    /// unbounded). A budgeted responder serves a prefix of the want-list
    /// and the initiator re-requests the rest, keeping every frame under
    /// the transport's [`MAX_FRAME`] limit.
    pub delta_frame_bytes: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            gossip_interval: Duration::from_millis(5),
            seed: 0x7C9,
            loss_probability: 0.0,
            delta_budget: 0,
            paranoid: false,
            socket: TcpSocketOptions::default(),
            fault_plan: None,
            retry: RetryPolicy::none(),
            durability: None,
            max_frame_items: usize::MAX,
            delta_frame_bytes: u64::MAX,
        }
    }
}

impl TcpConfig {
    /// The fault plan gossip links run: `fault_plan` if set, else the
    /// `loss_probability` shorthand.
    pub fn effective_plan(&self) -> FaultPlan {
        self.fault_plan.clone().unwrap_or(FaultPlan::lossy(self.loss_probability))
    }
}

struct TcpNode {
    replica: Mutex<Replica>,
    alive: AtomicBool,
    /// The node's durability layer; `None` when durability is off, and
    /// also while a durable node is crashed (the WAL handle is dropped
    /// with the replica and reopened on revival).
    durability: Mutex<Option<Arc<NodeDurability>>>,
}

impl TcpNode {
    /// Run the checkpoint policy after a durable mutation. Takes the
    /// replica lock; call only from contexts that do not already hold it.
    fn after_mutation(&self) {
        let durability = self.durability.lock().clone();
        if let Some(d) = durability {
            let replica = self.replica.lock();
            d.maybe_checkpoint(&replica).expect("durable: checkpoint failed");
        }
    }
}

/// Write every byte of `bufs` with as few syscalls as the kernel allows:
/// repeated `write_vectored`, advancing through the slice list by hand
/// (std's `write_all_vectored` is unstable). In the common case the whole
/// frame — length prefix, control bytes, and value segments straight out
/// of the store's refcounted buffers — leaves in one call.
fn write_all_vectored(stream: &mut TcpStream, mut bufs: Vec<&[u8]>) -> std::io::Result<()> {
    while !bufs.is_empty() {
        let iov: Vec<IoSlice<'_>> = bufs.iter().map(|b| IoSlice::new(b)).collect();
        let mut n = stream.write_vectored(&iov)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        let mut done = 0;
        while done < bufs.len() && n >= bufs[done].len() {
            n -= bufs[done].len();
            done += 1;
        }
        bufs.drain(..done);
        if let Some(first) = bufs.first_mut() {
            *first = &first[n..];
        }
    }
    stream.flush()
}

/// Send one frame: a 4-byte little-endian length, the 4-byte CRC32 of the
/// body, then the writer's chunks, in a single vectored write — value
/// segments are never copied into a contiguous send buffer (the checksum
/// streams over the chunk list, so it costs no copies either).
pub(crate) fn write_frame(stream: &mut TcpStream, w: &Writer) -> Result<()> {
    // Check *before* any bytes hit the wire: an oversize frame is
    // deterministic (re-encoding re-exceeds), so it surfaces as the typed,
    // non-retryable [`Error::FrameTooLarge`] instead of a silent `as u32`
    // truncation that would desynchronize the stream.
    let len = check_frame_len(w.len() + CHECKED_HEADER)?.to_le_bytes();
    let crc = w.crc32().to_le_bytes();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(8);
    bufs.push(&len);
    bufs.push(&crc);
    bufs.extend(w.chunks());
    write_all_vectored(stream, bufs).map_err(|e| Error::Network(format!("send frame: {e}")))
}

/// Read one frame body into `body` (reused across frames; only grows).
/// The body is the checked envelope — CRC32 followed by the encoding —
/// still unverified; the checked decoders verify before touching it.
pub(crate) fn read_frame_into(stream: &mut TcpStream, body: &mut Vec<u8>) -> Result<()> {
    let mut len_buf = [0u8; 4];
    stream
        .read_exact(&mut len_buf)
        .map_err(|e| Error::Network(format!("read frame length: {e}")))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        // Not retryable: a conforming sender never produces this (it has
        // the same sender-side check), so re-reading cannot succeed.
        return Err(Error::FrameTooLarge { len: len as u64, limit: MAX_FRAME as u64 });
    }
    body.clear();
    body.resize(len as usize, 0);
    stream.read_exact(body).map_err(|e| Error::Network(format!("read frame body: {e}")))?;
    Ok(())
}

/// A [`Transport`] over a TCP connection to one peer's server: each
/// exchange writes a request frame and reads a response frame. The
/// connection is opened lazily — retrying per
/// [`TcpSocketOptions::connect_attempts`], then failing with the typed
/// [`Error::PeerUnavailable`] — and reused across the exchanges of a sync
/// round; any I/O error discards it so the next exchange reconnects.
pub struct TcpTransport {
    peer: NodeId,
    addr: SocketAddr,
    options: TcpSocketOptions,
    stream: Option<TcpStream>,
    /// Reusable request encoder: after the first exchange, encoding a
    /// request performs no allocations.
    writer: Writer,
    /// Pool of response-frame buffers: a frame whose decoded response did
    /// not alias it (small inlined values, `YouAreCurrent`, ...) is
    /// reclaimed and backs the next read, so small-message exchanges stop
    /// allocating a fresh frame buffer per response.
    scratch: DecodeScratch,
}

impl TcpTransport {
    /// A transport to the server of `peer` listening at `addr`, with
    /// default socket options.
    pub fn new(peer: NodeId, addr: SocketAddr) -> TcpTransport {
        TcpTransport::with_options(peer, addr, TcpSocketOptions::default())
    }

    /// A transport with explicit timeouts and connect retry schedule.
    pub fn with_options(peer: NodeId, addr: SocketAddr, options: TcpSocketOptions) -> TcpTransport {
        TcpTransport {
            peer,
            addr,
            options,
            stream: None,
            writer: Writer::new(),
            scratch: DecodeScratch::new(),
        }
    }

    /// Drop the current connection (if any); the next exchange reconnects.
    /// Lets tests and harnesses exercise the reconnect path directly.
    pub fn reset(&mut self) {
        self.stream = None;
    }

    fn connect(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            let attempts = self.options.connect_attempts.max(1);
            let mut backoff = self.options.connect_backoff;
            for attempt in 1..=attempts {
                match TcpStream::connect_timeout(&self.addr, self.options.connect_timeout) {
                    Ok(stream) => {
                        stream
                            .set_read_timeout(Some(self.options.read_timeout))
                            .and_then(|()| {
                                stream.set_write_timeout(Some(self.options.write_timeout))
                            })
                            .map_err(|e| Error::Network(format!("socket option: {e}")))?;
                        self.stream = Some(stream);
                        break;
                    }
                    Err(_) if attempt < attempts => {
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(Duration::from_secs(1));
                        }
                    }
                    Err(_) => return Err(Error::PeerUnavailable(self.peer)),
                }
            }
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }
}

impl Transport for TcpTransport {
    fn peer(&self) -> NodeId {
        self.peer
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        encode_request_to(&req, &mut self.writer);
        self.connect()?;
        let writer = &self.writer;
        let scratch = &mut self.scratch;
        let stream = self.stream.as_mut().expect("just connected");
        let mut round = |stream: &mut TcpStream| -> Result<ProtocolResponse> {
            write_frame(stream, writer)?;
            // The received frame becomes the shared backing of the decoded
            // response: after the CRC verifies, values are zero-copy
            // sub-views of it. A failed check is a retryable CorruptFrame
            // and nothing was aliased. The buffer comes from (and, when
            // the response leaves it unaliased, returns to) the scratch
            // pool, so small responses recycle one buffer forever.
            let mut buf = scratch.take_buf();
            read_frame_into(stream, &mut buf)?;
            let frame = Bytes::from(buf);
            let resp = decode_response_checked_shared(&frame)?;
            scratch.recycle(frame);
            Ok(resp)
        };
        let resp = match round(stream) {
            Ok(resp) => resp,
            Err(e) => {
                // The connection is in an unknown state; reconnect next time.
                self.stream = None;
                return Err(e);
            }
        };
        match resp {
            ProtocolResponse::Error(msg) => Err(Error::Network(format!("peer error: {msg}"))),
            // Typed routing refusals (`NotServedHere`, `ShardMoving`)
            // survive the wire: the serving side encodes them in-band and
            // the initiator gets the original error back, retryability
            // intact.
            ProtocolResponse::Refused(e) => Err(e),
            resp => Ok(resp),
        }
    }
}

/// A cluster of replicas gossiping over localhost TCP.
pub struct TcpCluster {
    nodes: Vec<Arc<TcpNode>>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    config: TcpConfig,
}

impl TcpCluster {
    /// Bind `n_nodes` listeners on localhost and start gossiping.
    pub fn spawn(n_nodes: usize, n_items: usize, config: TcpConfig) -> Result<TcpCluster> {
        assert!(n_nodes >= 2);
        let running = Arc::new(AtomicBool::new(true));
        let nodes: Vec<Arc<TcpNode>> = (0..n_nodes)
            .map(|i| {
                let id = NodeId::from_index(i);
                let (durability, mut replica) = match &config.durability {
                    Some(cfg) => {
                        let (d, r) = open_durable_node(
                            cfg,
                            id,
                            n_nodes,
                            n_items,
                            config.delta_budget,
                            config.paranoid,
                        );
                        (Some(d), r)
                    }
                    None => {
                        let mut replica = Replica::new(id, n_nodes, n_items);
                        if config.delta_budget > 0 {
                            replica.enable_delta(config.delta_budget);
                        }
                        replica.set_paranoid(config.paranoid);
                        (None, replica)
                    }
                };
                replica.set_delta_frame_budget(config.delta_frame_bytes);
                Arc::new(TcpNode {
                    replica: Mutex::new(replica),
                    alive: AtomicBool::new(true),
                    durability: Mutex::new(durability),
                })
            })
            .collect();

        // Bind all listeners first so every gossip thread knows every addr.
        let listeners: Vec<TcpListener> = (0..n_nodes)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("local_addr: {e}")))?;

        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            // Listener thread.
            let node = nodes[i].clone();
            let run = running.clone();
            let socket = config.socket;
            handles.push(std::thread::spawn(move || server_loop(listener, node, run, socket)));
            // Gossip thread.
            let node = nodes[i].clone();
            let run = running.clone();
            let peer_addrs = addrs.clone();
            let me = NodeId::from_index(i);
            let cfg = config.clone();
            handles.push(std::thread::spawn(move || gossip_loop(me, node, peer_addrs, run, cfg)));
        }
        Ok(TcpCluster { nodes, addrs, running, handles, config })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The socket address a node's replica server listens on.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// Apply a user update at `node`.
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let n = self.checked(node)?;
        n.replica.lock().update(item, op)?;
        n.after_mutation();
        Ok(())
    }

    /// Read the user-visible value at `node`. A crashed durable node has
    /// no in-memory replica to serve from, so the read fails; without
    /// durability the surviving in-memory state is readable (the legacy
    /// simulation behaviour).
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if self.config.durability.is_some() && !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n.replica.lock().read(item)?.as_bytes().to_vec())
    }

    fn checked(&self, node: NodeId) -> Result<&Arc<TcpNode>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n)
    }

    /// A fresh [`TcpTransport`] to `peer`'s server, with the cluster's
    /// socket options — for tests and harnesses that wrap it (in a
    /// [`ChaosTransport`], a reset shim, ...) and drive pulls through
    /// [`pull_now_via`](Self::pull_now_via).
    pub fn transport_to(&self, peer: NodeId) -> TcpTransport {
        TcpTransport::with_options(peer, self.addr(peer), self.config.socket)
    }

    /// Out-of-bound fetch over TCP, driven through the engine like every
    /// other exchange.
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        if recipient == source {
            return Ok(OobOutcome::AlreadyCurrent);
        }
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::oob(&mut MutexHost(&node.replica), &mut transport, item)?;
        node.after_mutation();
        Ok(out)
    }

    /// Run one whole-item pull right now (`recipient` from `source`),
    /// bypassing the gossip schedule — deterministic schedules for tests.
    pub fn pull_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::pull(&mut MutexHost(&node.replica), &mut transport)?;
        node.after_mutation();
        Ok(out)
    }

    /// As [`pull_now`](Self::pull_now), in delta mode.
    pub fn pull_delta_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::pull_delta(&mut MutexHost(&node.replica), &mut transport)?;
        node.after_mutation();
        Ok(out)
    }

    /// As [`pull_now`](Self::pull_now), via digest-tree set
    /// reconciliation — the cold-start rung below whole-pull.
    pub fn pull_recon_now(&self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        let out = Engine::pull_recon(&mut MutexHost(&node.replica), &mut transport)?;
        node.after_mutation();
        Ok(out)
    }

    /// Bound log-vector retention at `node` to `keep` records per
    /// (origin, item) component.
    pub fn set_log_retention(&self, node: NodeId, keep: usize) -> Result<()> {
        let node = self.checked(node)?;
        node.replica.lock().set_log_retention(keep);
        node.after_mutation();
        Ok(())
    }

    /// One whole-item pull at `recipient` over a caller-supplied
    /// transport (typically a wrapped [`transport_to`](Self::transport_to))
    /// with a retry policy.
    pub fn pull_now_via<T: Transport>(
        &self,
        recipient: NodeId,
        transport: &mut T,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        let node = self.checked(recipient)?;
        let out = Engine::pull_with(&mut MutexHost(&node.replica), transport, policy)?;
        node.after_mutation();
        Ok(out)
    }

    /// As [`pull_now_via`](Self::pull_now_via), in delta mode (with the
    /// engine's delta-to-whole degradation ladder on retryable failures).
    pub fn pull_delta_now_via<T: Transport>(
        &self,
        recipient: NodeId,
        transport: &mut T,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        let node = self.checked(recipient)?;
        let out = Engine::pull_delta_with(&mut MutexHost(&node.replica), transport, policy)?;
        node.after_mutation();
        Ok(out)
    }

    /// One whole-item pull through a caller-owned [`ChaosLink`] — the
    /// chaos-soak entry point, as on
    /// [`ThreadedCluster`](crate::ThreadedCluster).
    pub fn pull_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let mut transport = ChaosTransport::new(self.transport_to(source), link);
        self.pull_now_via(recipient, &mut transport, policy)
    }

    /// As [`pull_now_chaos`](Self::pull_now_chaos), in delta mode.
    pub fn pull_delta_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let mut transport = ChaosTransport::new(self.transport_to(source), link);
        self.pull_delta_now_via(recipient, &mut transport, policy)
    }

    /// Crash a node: it refuses connections and stops gossiping while
    /// down. With durability configured, the in-memory replica is really
    /// dropped (only the on-disk WAL + snapshot survive); without it, the
    /// replica survives in memory (the legacy simulation).
    pub fn crash(&self, node: NodeId) {
        let n = &self.nodes[node.index()];
        n.alive.store(false, Ordering::SeqCst);
        if self.config.durability.is_some() {
            let placeholder =
                Replica::new(node, self.n_nodes(), self.with_replica(node, Replica::n_items));
            *n.replica.lock() = placeholder;
            *n.durability.lock() = None;
        }
    }

    /// Revive a crashed node; with durability configured, the replica is
    /// first reconstructed from its on-disk snapshot + WAL, then
    /// anti-entropy brings it the rest of the way up to date.
    pub fn revive(&self, node: NodeId) {
        let n = &self.nodes[node.index()];
        if let Some(cfg) = &self.config.durability {
            let (durability, mut replica) = open_durable_node(
                cfg,
                node,
                self.n_nodes(),
                self.with_replica(node, Replica::n_items),
                self.config.delta_budget,
                self.config.paranoid,
            );
            replica.set_delta_frame_budget(self.config.delta_frame_bytes);
            *n.replica.lock() = replica;
            *n.durability.lock() = Some(durability);
        }
        n.alive.store(true, Ordering::SeqCst);
    }

    /// Run a closure over a locked replica.
    pub fn with_replica<T>(&self, node: NodeId, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes[node.index()].replica.lock())
    }

    /// Wait until all alive replicas hold equal DBVVs and no auxiliary
    /// state remains, or the deadline passes. See
    /// [`TcpCluster::try_quiesce`] for the typed form.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        self.try_quiesce(timeout).is_ok()
    }

    /// As [`TcpCluster::quiesce`], surfacing a timeout as the typed
    /// [`Error::DeadlineExceeded`]. Probe pacing follows the shared
    /// [`RetryPolicy`] backoff.
    pub fn try_quiesce(&self, timeout: Duration) -> Result<()> {
        crate::runtime::quiesce_policy(self.config.gossip_interval).poll_until(
            "quiescence",
            timeout,
            || self.is_quiescent(),
        )
    }

    fn is_quiescent(&self) -> bool {
        let alive: Vec<&Arc<TcpNode>> =
            self.nodes.iter().filter(|n| n.alive.load(Ordering::SeqCst)).collect();
        if alive.len() < 2 {
            return true;
        }
        let first = alive[0].replica.lock();
        let reference = first.dbvv().clone();
        let head_ok = first.aux_item_count() == 0;
        drop(first);
        head_ok
            && alive[1..].iter().all(|n| {
                let r = n.replica.lock();
                r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal
            })
    }

    /// Stop all threads and return the final replicas (journal sinks
    /// detached — the clones are for inspection, not for appending to the
    /// cluster's WALs).
    pub fn shutdown(mut self) -> Vec<Replica> {
        self.stop();
        self.nodes
            .iter()
            .map(|n| {
                let mut r = n.replica.lock().clone();
                r.set_mutation_sink(None);
                r
            })
            .collect()
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock every accept loop with a dummy connection.
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        if self.running.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn server_loop(
    listener: TcpListener,
    node: Arc<TcpNode>,
    running: Arc<AtomicBool>,
    socket: TcpSocketOptions,
) {
    while running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if !running.load(Ordering::SeqCst) {
            return;
        }
        let node = node.clone();
        let run = running.clone();
        std::thread::spawn(move || serve_conn(stream, node, run, socket));
    }
}

/// Fold a serving-side error into its wire form: typed routing refusals
/// (`NotServedHere`, `ShardMoving`) ride in-band as
/// [`ProtocolResponse::Refused`] so the initiator recovers the original
/// error (and its retryability); everything else degrades to the stringly
/// [`ProtocolResponse::Error`].
pub(crate) fn refusal_or_error(e: Error) -> ProtocolResponse {
    match e {
        e @ (Error::NotServedHere { .. } | Error::ShardMoving(_)) => ProtocolResponse::Refused(e),
        e => ProtocolResponse::Error(e.to_string()),
    }
}

/// Serve one connection: a loop of request frame → [`Engine::handle`] →
/// response frame. A crashed node drops the connection without replying.
/// A request that fails its CRC is counted at the serving replica and
/// refused in-band — the initiator sees a retryable error and re-sends.
fn serve_conn(
    mut stream: TcpStream,
    node: Arc<TcpNode>,
    running: Arc<AtomicBool>,
    socket: TcpSocketOptions,
) {
    let _ = stream.set_read_timeout(Some(socket.read_timeout));
    let _ = stream.set_write_timeout(Some(socket.write_timeout));
    // Per-connection reusable buffers: request frames land in `body`,
    // responses encode into `writer` — in steady state a served exchange
    // allocates nothing on the control path and ships values as refcounted
    // segments in one vectored write.
    let mut body = Vec::new();
    let mut writer = Writer::new();
    loop {
        if !running.load(Ordering::SeqCst) || !node.alive.load(Ordering::SeqCst) {
            return;
        }
        if read_frame_into(&mut stream, &mut body).is_err() {
            return; // peer closed, timed out, or sent garbage
        }
        if !node.alive.load(Ordering::SeqCst) {
            return; // crashed between frames: silently drop
        }
        let resp = match decode_request_checked(&body) {
            Ok(req) => {
                Engine::handle(&mut node.replica.lock(), req).unwrap_or_else(refusal_or_error)
            }
            Err(e) => {
                if matches!(e, Error::CorruptFrame(_)) {
                    node.replica.lock().note_corrupt_frame();
                }
                ProtocolResponse::Error(format!("bad request: {e}"))
            }
        };
        encode_response_to(&resp, &mut writer);
        if write_frame(&mut stream, &writer).is_err() {
            return;
        }
    }
}

fn gossip_loop(
    me: NodeId,
    node: Arc<TcpNode>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    let n = addrs.len();
    let budget = GossipBudget::per_frame(cfg.max_frame_items);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x51_7C_C1));
    // One persistent chaos link per peer, deterministic in (seed, me, peer).
    let plan = cfg.effective_plan();
    let mut links: Vec<ChaosLink> = (0..n)
        .map(|peer| {
            let link_seed = cfg
                .seed
                .wrapping_add(((me.index() * n + peer) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ChaosLink::new(link_seed, plan.clone())
        })
        .collect();
    while running.load(Ordering::SeqCst) {
        // Sleep the gossip interval in small slices so shutdown is prompt
        // even with long intervals.
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !node.alive.load(Ordering::SeqCst) {
            continue;
        }
        let mut peer = rng.gen_range(0..n);
        if peer == me.index() {
            peer = (peer + 1) % n;
        }
        let tcp = TcpTransport::with_options(NodeId::from_index(peer), addrs[peer], cfg.socket);
        let mut transport = ChaosTransport::new(tcp, &mut links[peer]);
        let mut host = MutexHost(&node.replica);
        // Connection failures and injected faults exhaust the in-round
        // retry policy and surface as errors; gossip then just retries on
        // the next tick.
        let result = if cfg.delta_budget > 0 {
            Engine::pull_delta_budgeted(&mut host, &mut transport, &cfg.retry, &budget)
        } else {
            Engine::pull_with(&mut host, &mut transport, &cfg.retry)
        };
        if result.is_ok() {
            node.after_mutation();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_converge_over_real_sockets() {
        let cluster = TcpCluster::spawn(
            3,
            50,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        for i in 0..12u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8 + 1]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence over TCP");
        for i in 0..12u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8 + 1]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
            assert_eq!(r.costs().conflicts_detected, 0);
        }
    }

    #[test]
    fn oob_fetch_over_tcp() {
        let cluster = TcpCluster::spawn(
            2,
            10,
            TcpConfig { gossip_interval: Duration::from_secs(60), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"wire"[..])).unwrap();
        let out = cluster.oob_fetch(NodeId(1), NodeId(0), ItemId(1)).unwrap();
        assert_eq!(out, OobOutcome::Adopted { from_aux: false });
        assert_eq!(cluster.read(NodeId(1), ItemId(1)).unwrap(), b"wire");
        cluster.shutdown();
    }

    #[test]
    fn crashed_node_refuses_and_recovers() {
        // Durable mode: the crash drops the in-memory replica; revival
        // recovers from the node's own WAL, then catches up via gossip.
        let tmp = epidb_durable::testdir::TempDir::new("tcp-crash");
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig {
                gossip_interval: Duration::from_millis(2),
                durability: Some(DurabilityConfig::new(tmp.path().clone())),
                ..TcpConfig::default()
            },
        )
        .unwrap();
        cluster.update(NodeId(2), ItemId(5), UpdateOp::set(&b"pre-crash"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        cluster.crash(NodeId(2));
        assert!(matches!(cluster.read(NodeId(2), ItemId(5)), Err(Error::NodeDown(NodeId(2)))));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(5)).unwrap(), b"pre-crash");
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }

    #[test]
    fn crashed_node_stays_stale_without_durability() {
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig { gossip_interval: Duration::from_millis(2), ..TcpConfig::default() },
        )
        .unwrap();
        cluster.crash(NodeId(2));
        cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"while-down"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"");
        cluster.revive(NodeId(2));
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(NodeId(2), ItemId(0)).unwrap(), b"while-down");
        cluster.shutdown();
    }

    #[test]
    fn oversize_frames_are_typed_and_non_retryable() {
        // Regression: `write_frame` used to truncate the length with
        // `as u32` (silently corrupting the stream past 4 GiB) and the
        // receiver rejected oversize frames with a *retryable* Network
        // error. Both ends now surface the typed, non-retryable
        // `FrameTooLarge`.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let receiver = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut body = Vec::new();
            let err = read_frame_into(&mut stream, &mut body).unwrap_err();
            assert!(matches!(err, Error::FrameTooLarge { .. }), "receiver: {err}");
            assert!(!err.is_retryable(), "oversize frames must not be retried");
        });
        let mut stream = TcpStream::connect(addr).unwrap();

        // Sender side: the check fires before any bytes hit the wire.
        let mut w = Writer::new();
        w.bytes(&vec![0u8; MAX_FRAME as usize + 1]);
        let err = write_frame(&mut stream, &w).unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { .. }), "sender: {err}");
        assert!(!err.is_retryable());

        // Receiver backstop against a non-conforming peer: hand-send an
        // oversize length prefix.
        stream.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        stream.flush().unwrap();
        receiver.join().unwrap();
    }

    #[test]
    fn coalesced_delta_gossip_over_tcp_converges() {
        // Tight budgets on both ends: at most 2 wants per fetch frame and
        // a 64-byte responder payload budget — the round chunks and
        // re-requests its way to the same converged state.
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig {
                gossip_interval: Duration::from_millis(2),
                delta_budget: 1 << 20,
                max_frame_items: 2,
                delta_frame_bytes: 64,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        for i in 0..10u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 48]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence with tight budgets");
        for i in 0..10u32 {
            for node in 0..3u16 {
                assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8; 48]);
            }
        }
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }

    #[test]
    fn delta_gossip_over_tcp_converges() {
        let cluster = TcpCluster::spawn(
            3,
            20,
            TcpConfig {
                gossip_interval: Duration::from_millis(2),
                delta_budget: 1 << 20,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        for i in 0..6u32 {
            cluster
                .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 32]))
                .unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(30)), "no quiescence in TCP delta mode");
        let replicas = cluster.shutdown();
        for r in &replicas {
            r.check_invariants().unwrap();
        }
    }
}
