//! Conflict (inconsistency) events.
//!
//! Correctness criterion 1 of the paper (§2.1) requires that inconsistent
//! replicas of a data item are eventually detected. The protocol "declares"
//! inconsistency at three distinct sites (§5.1–§5.3); the event type below
//! records which one fired, so the test-suite can assert *where* detection
//! happened, not merely that it happened.

use std::fmt;

use crate::ids::{ItemId, NodeId};

/// Where in the protocol an inconsistency was detected.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConflictSite {
    /// `AcceptPropagation` found the received copy's IVV concurrent with the
    /// local regular copy's IVV (Fig. 3).
    Propagation,
    /// Out-of-bound copying found the received IVV concurrent with the local
    /// (auxiliary or regular) IVV (§5.2).
    OutOfBound,
    /// `IntraNodePropagation` found the regular copy's IVV concurrent with
    /// the IVV stored in the earliest auxiliary log record (Fig. 4), or the
    /// final regular/auxiliary IVV comparison conflicted.
    IntraNode,
}

impl fmt::Display for ConflictSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConflictSite::Propagation => "propagation",
            ConflictSite::OutOfBound => "out-of-bound",
            ConflictSite::IntraNode => "intra-node",
        };
        f.write_str(s)
    }
}

/// A declared inconsistency between replicas of one data item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConflictEvent {
    /// The data item whose replicas are inconsistent.
    pub item: ItemId,
    /// The node that detected (declared) the inconsistency.
    pub detected_at: NodeId,
    /// The peer whose copy conflicted with the local one, when the conflict
    /// arose from an exchange with a specific peer (`None` for intra-node
    /// detection, where the conflicting histories live on the same node).
    pub peer: Option<NodeId>,
    /// Which protocol procedure detected it.
    pub site: ConflictSite,
    /// The pair of origin servers whose version-vector components were found
    /// mutually inconsistent, when pinpointed. The paper (footnote 3) notes
    /// that if the vectors conflict in components `k` and `l`, then nodes
    /// `k` and `l` performed the offending updates.
    pub offending: Option<(NodeId, NodeId)>,
}

impl fmt::Display for ConflictEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conflict on {} detected at {} via {}", self.item, self.detected_at, self.site)?;
        if let Some(p) = self.peer {
            write!(f, " (peer {p})")?;
        }
        if let Some((k, l)) = self.offending {
            write!(f, " [offending updates from {k} and {l}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_site_and_peer() {
        let ev = ConflictEvent {
            item: ItemId(3),
            detected_at: NodeId(1),
            peer: Some(NodeId(2)),
            site: ConflictSite::Propagation,
            offending: Some((NodeId(0), NodeId(2))),
        };
        let s = ev.to_string();
        assert!(s.contains("x3"));
        assert!(s.contains("n1"));
        assert!(s.contains("propagation"));
        assert!(s.contains("peer n2"));
        assert!(s.contains("offending updates from n0 and n2"));
    }

    #[test]
    fn display_without_optionals() {
        let ev = ConflictEvent {
            item: ItemId(0),
            detected_at: NodeId(0),
            peer: None,
            site: ConflictSite::IntraNode,
            offending: None,
        };
        assert_eq!(ev.to_string(), "conflict on x0 detected at n0 via intra-node");
    }

    #[test]
    fn sites_are_distinct() {
        assert_ne!(ConflictSite::Propagation, ConflictSite::OutOfBound);
        assert_ne!(ConflictSite::OutOfBound, ConflictSite::IntraNode);
    }
}
