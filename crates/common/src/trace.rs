//! Structured protocol tracing: a bounded ring buffer of per-step events.
//!
//! Every protocol step a replica executes (user update, propagation
//! send/accept, out-of-bound copy, intra-node replay, delta exchange) can
//! record one compact [`TraceEvent`] into a per-replica [`TraceRing`].
//! The ring is disabled by default and recording behind a disabled ring is
//! a single branch, so production paths pay nothing. When the paranoid
//! auditor (or a test assertion) trips, [`TraceRing::dump`] renders the
//! recent protocol history as a table — the last event names the offending
//! step.
//!
//! This crate has no dependency on `epidb-vv`, so the version-vector
//! ordering outcome travels as the mirror enum [`OrdTag`].

use std::collections::VecDeque;
use std::fmt;

use crate::{ItemId, NodeId};

/// Default ring capacity when tracing is enabled without an explicit size.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// The kind of protocol step an event describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceStep {
    /// A user update applied to the regular copy (`detail` = the new
    /// `V_ii` the log record carries).
    LocalUpdate,
    /// A user update applied to an auxiliary copy (`detail` = auxiliary
    /// log length after the append).
    AuxUpdate,
    /// `SendPropagation` built a payload (`detail` = items shipped).
    SendPropagation,
    /// `SendPropagation` answered "you are current".
    SendUpToDate,
    /// `AcceptPropagation` processed one shipped item; `ord` is the
    /// IVV comparison outcome that routed it.
    AcceptItem,
    /// A concurrent shipped item was refused under the report policy and
    /// its records stripped from the received tails.
    RefuseItem,
    /// A concurrent shipped item was merged by the last-writer-wins
    /// policy (`detail` = the `m` of the resolution's log record).
    LwwResolve,
    /// Surviving received tails were appended to the local log vector
    /// (`detail` = records appended).
    AppendTails,
    /// Intra-node propagation replayed one auxiliary record onto the
    /// regular copy (`detail` = the `m` of the replay's log record).
    IntraReplay,
    /// Intra-node propagation discarded a caught-up auxiliary copy.
    IntraDiscard,
    /// Intra-node propagation found the regular copy and an auxiliary
    /// record inconsistent.
    IntraConflict,
    /// This replica served an out-of-bound request (`detail` = 1 when the
    /// reply came from the auxiliary copy, 0 from the regular copy).
    OobServe,
    /// This replica received an out-of-bound reply; `ord` is the IVV
    /// comparison outcome.
    OobAccept,
    /// Delta mode: an offer was evaluated (`detail` = items wanted).
    DeltaOffer,
    /// Delta mode: an operation chain was applied (`detail` = chain
    /// length).
    DeltaOps,
    /// `SendPropagation` found the recipient's gap no longer covered by
    /// the (retention-pruned) log vector and asked it to reconcile.
    SendNeedRecon,
    /// This replica served a reconciliation request (`detail` = digests
    /// returned plus items shipped).
    ReconServe,
    /// Reconciliation descent finished at the recipient (`detail` =
    /// items fetched).
    ReconAccept,
}

impl TraceStep {
    /// Stable kebab-case name (used in dumps and panic messages).
    pub fn name(self) -> &'static str {
        match self {
            TraceStep::LocalUpdate => "local-update",
            TraceStep::AuxUpdate => "aux-update",
            TraceStep::SendPropagation => "send-propagation",
            TraceStep::SendUpToDate => "send-up-to-date",
            TraceStep::AcceptItem => "accept-item",
            TraceStep::RefuseItem => "refuse-item",
            TraceStep::LwwResolve => "lww-resolve",
            TraceStep::AppendTails => "append-tails",
            TraceStep::IntraReplay => "intra-replay",
            TraceStep::IntraDiscard => "intra-discard",
            TraceStep::IntraConflict => "intra-conflict",
            TraceStep::OobServe => "oob-serve",
            TraceStep::OobAccept => "oob-accept",
            TraceStep::DeltaOffer => "delta-offer",
            TraceStep::DeltaOps => "delta-ops",
            TraceStep::SendNeedRecon => "send-need-recon",
            TraceStep::ReconServe => "recon-serve",
            TraceStep::ReconAccept => "recon-accept",
        }
    }
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Version-vector comparison outcome attached to an event (mirror of
/// `epidb_vv::VvOrd`, plus "no comparison happened at this step").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OrdTag {
    /// No version-vector comparison is associated with the step.
    #[default]
    NoCompare,
    /// The remote vector strictly dominated the local one.
    Dominates,
    /// The vectors were equal.
    Equal,
    /// The remote vector was strictly dominated by the local one.
    DominatedBy,
    /// The vectors were concurrent (a conflict).
    Concurrent,
}

impl fmt::Display for OrdTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrdTag::NoCompare => "-",
            OrdTag::Dominates => "dominates",
            OrdTag::Equal => "equal",
            OrdTag::DominatedBy => "dominated-by",
            OrdTag::Concurrent => "concurrent",
        })
    }
}

/// One recorded protocol step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Monotonic per-replica sequence number (counts all events ever
    /// recorded, including ones the ring has since evicted).
    pub seq: u64,
    /// The replica that executed the step.
    pub node: NodeId,
    /// What the step was.
    pub step: TraceStep,
    /// The item involved, when the step concerns a single item.
    pub item: Option<ItemId>,
    /// The remote peer involved, when any.
    pub peer: Option<NodeId>,
    /// The version-vector comparison outcome, when one routed the step.
    pub ord: OrdTag,
    /// Step-specific detail (see the [`TraceStep`] variants).
    pub detail: u64,
    /// The replica's DBVV total *after* the step — the quantity the
    /// DBVV-equals-sum-of-IVVs invariant constrains.
    pub dbvv_total: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:06} {:<3} {:<16}", self.seq, self.node, self.step.name())?;
        match self.item {
            Some(x) => write!(f, " item={:<6}", x.to_string())?,
            None => write!(f, " item=-     ")?,
        }
        match self.peer {
            Some(p) => write!(f, " peer={:<4}", p.to_string())?,
            None => write!(f, " peer=-   ")?,
        }
        write!(f, " ord={:<12} detail={:<6} dbvv_total={}", self.ord, self.detail, self.dbvv_total)
    }
}

/// A bounded ring of [`TraceEvent`]s with an enable flag.
///
/// Recording against a disabled ring is a no-op (one branch); enabling
/// costs nothing until events arrive. When full, the oldest event is
/// evicted — `seq` keeps counting, so dumps show how much history was
/// dropped.
#[derive(Clone, Debug)]
pub struct TraceRing {
    enabled: bool,
    capacity: usize,
    next_seq: u64,
    events: VecDeque<TraceEvent>,
}

impl TraceRing {
    /// A disabled ring (the default state of every replica).
    pub fn disabled() -> TraceRing {
        TraceRing {
            enabled: false,
            capacity: DEFAULT_TRACE_CAPACITY,
            next_seq: 0,
            events: VecDeque::new(),
        }
    }

    /// An enabled ring holding up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> TraceRing {
        assert!(capacity > 0, "trace ring needs a positive capacity");
        TraceRing { enabled: true, capacity, next_seq: 0, events: VecDeque::new() }
    }

    /// Turn recording on (retains any previously recorded events).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turn recording off (retains the recorded events for dumping).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Is recording currently on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event, assigning its sequence number. No-op when the
    /// ring is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        node: NodeId,
        step: TraceStep,
        item: Option<ItemId>,
        peer: Option<NodeId>,
        ord: OrdTag,
        detail: u64,
        dbvv_total: u64,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceEvent { seq, node, step, item, peer, ord, detail, dbvv_total });
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// The most recently recorded event, if any.
    pub fn last(&self) -> Option<&TraceEvent> {
        self.events.back()
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded_total(&self) -> u64 {
        self.next_seq
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop all held events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Render the held events as a table, most recent last. This is what
    /// the paranoid auditor prints when an invariant trips.
    pub fn dump(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let dropped = self.next_seq - self.events.len() as u64;
        let _ = writeln!(
            out,
            "--- protocol trace ({} events held, {} recorded, {} evicted; most recent last) ---",
            self.events.len(),
            self.next_seq,
            dropped
        );
        for ev in &self.events {
            let _ = writeln!(out, "{ev}");
        }
        let _ = write!(out, "--- end of trace ---");
        out
    }
}

impl Default for TraceRing {
    fn default() -> TraceRing {
        TraceRing::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ring: &mut TraceRing, step: TraceStep) {
        ring.record(NodeId(0), step, Some(ItemId(3)), Some(NodeId(1)), OrdTag::Dominates, 7, 9);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::disabled();
        ev(&mut r, TraceStep::LocalUpdate);
        assert!(r.is_empty());
        assert_eq!(r.recorded_total(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let mut r = TraceRing::with_capacity(2);
        ev(&mut r, TraceStep::LocalUpdate);
        ev(&mut r, TraceStep::AcceptItem);
        ev(&mut r, TraceStep::OobAccept);
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded_total(), 3);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(r.last().unwrap().step, TraceStep::OobAccept);
    }

    #[test]
    fn dump_names_steps_and_counts() {
        let mut r = TraceRing::with_capacity(8);
        ev(&mut r, TraceStep::LocalUpdate);
        ev(&mut r, TraceStep::RefuseItem);
        let dump = r.dump();
        assert!(dump.contains("local-update"));
        assert!(dump.contains("refuse-item"));
        assert!(dump.contains("2 events held"));
        assert!(dump.contains("ord=dominates"));
    }

    #[test]
    fn enable_disable_toggle() {
        let mut r = TraceRing::disabled();
        r.enable();
        assert!(r.is_enabled());
        ev(&mut r, TraceStep::IntraReplay);
        r.disable();
        ev(&mut r, TraceStep::IntraReplay);
        assert_eq!(r.len(), 1);
    }
}
