//! Strongly typed identifiers for servers and data items.
//!
//! The paper's system model (§2) fixes the set of servers across which a
//! database is replicated, and treats the database as a collection of data
//! items. Both sets are dense `0..n` ranges here, which lets every data
//! structure in the workspace (version vectors, log-vector pointer arrays,
//! `IsSelected` flags) be a flat array indexed by these ids — exactly the
//! constant-time access the paper's complexity arguments rely on (§6).

use std::fmt;

/// Identifier of a server (a *node*) holding a replica of the database.
///
/// Nodes are numbered densely `0..n` where `n` is the (fixed) number of
/// servers replicating the database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The dense index of this node, usable directly as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over all node ids in a system of `n` servers.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId::from_index)
    }

    /// Build a `NodeId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u16::MAX` (65 535 servers is far beyond
    /// the paper's target scale).
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        assert!(index <= u16::MAX as usize, "node index {index} out of range");
        NodeId(index as u16)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Identifier of a shard: one contiguous slice of the item space,
/// replicated by one replica group (see `epidb-core`'s `shard` module).
///
/// Shards are numbered densely `0..S`. A sharded node runs one full
/// instance of the paper's protocol per owned shard, so a `ShardId` plays
/// the same routing role a database name plays for multi-database servers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ShardId(pub u16);

impl ShardId {
    /// The dense index of this shard, usable directly as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over all shard ids in a system of `n` shards.
    pub fn all(n: usize) -> impl Iterator<Item = ShardId> + Clone {
        (0..n).map(ShardId::from_index)
    }

    /// Build a `ShardId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u16::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> ShardId {
        assert!(index <= u16::MAX as usize, "shard index {index} out of range");
        ShardId(index as u16)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u16> for ShardId {
    fn from(v: u16) -> Self {
        ShardId(v)
    }
}

/// Identifier of a data item in the replicated database.
///
/// Items are numbered densely `0..N`. The paper presents update propagation
/// in the "whole data item copying" style (§2); an item id names the unit of
/// copying and of replica-consistency maintenance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The dense index of this item, usable directly as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over all item ids in a database of `n` items.
    pub fn all(n: usize) -> impl Iterator<Item = ItemId> + Clone {
        (0..n).map(ItemId::from_index)
    }

    /// Build an `ItemId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> ItemId {
        assert!(index <= u32::MAX as usize, "item index {index} out of range");
        ItemId(index as u32)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from_index(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n, NodeId(7));
        assert_eq!(n.to_string(), "n7");
    }

    #[test]
    fn item_id_roundtrip() {
        let x = ItemId::from_index(123_456);
        assert_eq!(x.index(), 123_456);
        assert_eq!(x.to_string(), "x123456");
    }

    #[test]
    fn all_enumerates_dense_range() {
        let nodes: Vec<NodeId> = NodeId::all(3).collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let items: Vec<ItemId> = ItemId::all(2).collect();
        assert_eq!(items, vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    #[should_panic(expected = "node index")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ItemId(1) < ItemId(2));
        assert!(ShardId(1) < ShardId(2));
    }

    #[test]
    fn shard_id_roundtrip() {
        let s = ShardId::from_index(3);
        assert_eq!(s.index(), 3);
        assert_eq!(s, ShardId(3));
        assert_eq!(s.to_string(), "s3");
        assert_eq!(ShardId::all(2).collect::<Vec<_>>(), vec![ShardId(0), ShardId(1)]);
    }
}
