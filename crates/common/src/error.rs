//! The shared error type for the workspace.

use std::fmt;

use crate::ids::{ItemId, NodeId, ShardId};

/// What a routed request was addressed to: the unit of dispatch a server
/// failed to resolve locally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RouteTarget {
    /// A named database on a multi-database server.
    Database(String),
    /// A shard on a sharded (partially replicating) node.
    Shard(ShardId),
}

impl fmt::Display for RouteTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteTarget::Database(name) => write!(f, "database {name:?}"),
            RouteTarget::Shard(shard) => write!(f, "shard {shard}"),
        }
    }
}

/// One replica-level invariant violation, found by an invariant predicate
/// (see `epidb-core`'s `paranoid` module). A plain value, not an [`Error`]
/// variant: invariant checks are *diagnoses*, consumed by paranoid mode
/// (which panics with the report) and by the model checker (which records
/// the violating state and minimizes the event trace that reached it) —
/// they never travel through the protocol's `Result` plumbing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvariantViolation {
    /// The replica the violation was found at.
    pub node: NodeId,
    /// Stable kebab-case name of the violated invariant (e.g.
    /// `"dbvv-sum"`).
    pub check: &'static str,
    /// Human-readable specifics (which item / origin / values).
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.node, self.check, self.detail)
    }
}

/// Errors surfaced by the replication machinery.
///
/// Most protocol-internal situations (older copy received, identical
/// replicas, conflicts) are *outcomes*, not errors; `Error` is reserved for
/// genuine misuse or environmental failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// An item id outside the database's fixed item universe.
    UnknownItem(ItemId),
    /// A node id outside the fixed server set.
    UnknownNode(NodeId),
    /// Two version vectors (or replicas) sized for different server counts
    /// were combined.
    DimensionMismatch {
        /// Dimension of the left-hand operand.
        left: usize,
        /// Dimension of the right-hand operand.
        right: usize,
    },
    /// An operation addressed a node that is currently crashed in the
    /// simulation.
    NodeDown(NodeId),
    /// An update required the item's token but the node does not hold it
    /// (pessimistic mode, §2).
    TokenNotHeld {
        /// The item whose token was required.
        item: ItemId,
        /// The node currently holding it.
        holder: NodeId,
    },
    /// The network (simulated or threaded) failed to deliver a message.
    Network(String),
    /// A received frame failed its integrity check (bad checksum, bad
    /// version byte, or malformed interior). Retryable: the sender's state
    /// is intact and a re-sent frame is expected to pass.
    CorruptFrame(String),
    /// A peer could not be reached after the configured connect retries.
    /// Retryable at a coarser granularity (the peer may come back).
    PeerUnavailable(NodeId),
    /// A frame exceeded the transport's hard size limit. NOT retryable:
    /// unlike a corrupt frame, re-sending the same message produces the
    /// same oversized frame, so a retry deterministically fails again.
    /// Raised on the *sender* before any bytes hit the wire, and on the
    /// receiver as a defensive backstop against a non-conforming peer.
    FrameTooLarge {
        /// Size of the offending frame in bytes.
        len: u64,
        /// The limit it exceeded.
        limit: u64,
    },
    /// Durable state (a snapshot or write-ahead log record) failed its
    /// integrity or decode checks. NOT retryable: unlike a corrupt frame,
    /// re-reading the same bytes from disk yields the same corruption, so
    /// retrying can only repeat the failure. Recovery must fall back to an
    /// older generation or surface the loss.
    CorruptSnapshot(String),
    /// A database with this name already exists on the server.
    DatabaseExists(String),
    /// No database with this name exists on the server.
    UnknownDatabase(String),
    /// A routed request (a `Db` or `Shard` envelope) addressed a target
    /// this node does not serve. NOT retryable *at the same peer*: the
    /// peer's placement is deterministic, so the identical request fails
    /// identically. `owners` carries the responder's view of who does
    /// serve the target (its shard-map entry), so the caller can redirect
    /// instead of retrying blindly; it is empty when the responder has no
    /// placement information (e.g. an unknown database name).
    NotServedHere {
        /// The dispatch target the request named.
        target: RouteTarget,
        /// Nodes the responder believes serve the target (may be empty).
        owners: Vec<NodeId>,
    },
    /// The shard is mid-handoff between replica groups: reads and writes
    /// are refused for the duration of the cutover window. Retryable —
    /// the window is transient, and once the handoff completes the same
    /// request succeeds (here, or at the new owner after a
    /// `NotServedHere` redirect).
    ShardMoving(ShardId),
    /// A bounded wait (quiescence polling, a durability flush, a drain)
    /// ran out of time. NOT retryable as-is: the caller chose the bound,
    /// so an identical re-wait is expected to exhaust it identically —
    /// retry with a larger deadline or investigate why progress stalled.
    DeadlineExceeded {
        /// What the caller was waiting for.
        waiting_for: String,
        /// The deadline that was exhausted.
        after: std::time::Duration,
    },
}

impl Error {
    /// Whether a retry of the same exchange can reasonably be expected to
    /// succeed. Transport-level failures (lost frames, corrupt frames,
    /// unreachable peers) are transient; everything else reflects protocol
    /// misuse or durable state and retrying would only repeat it.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Network(_)
                | Error::CorruptFrame(_)
                | Error::PeerUnavailable(_)
                | Error::ShardMoving(_)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownItem(x) => write!(f, "unknown item {x}"),
            Error::UnknownNode(n) => write!(f, "unknown node {n}"),
            Error::DimensionMismatch { left, right } => {
                write!(f, "version vector dimension mismatch: {left} vs {right}")
            }
            Error::NodeDown(n) => write!(f, "node {n} is down"),
            Error::TokenNotHeld { item, holder } => {
                write!(f, "token for {item} is held by {holder}")
            }
            Error::Network(msg) => write!(f, "network error: {msg}"),
            Error::CorruptFrame(msg) => write!(f, "corrupt frame: {msg}"),
            Error::PeerUnavailable(n) => write!(f, "peer {n} unavailable"),
            Error::FrameTooLarge { len, limit } => {
                write!(f, "frame of {len} bytes exceeds the {limit}-byte limit")
            }
            Error::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            Error::DatabaseExists(name) => write!(f, "database {name:?} already exists"),
            Error::UnknownDatabase(name) => write!(f, "unknown database {name:?}"),
            Error::NotServedHere { target, owners } => {
                write!(f, "{target} is not served here")?;
                if !owners.is_empty() {
                    write!(f, " (owners:")?;
                    for o in owners {
                        write!(f, " {o}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Error::ShardMoving(shard) => {
                write!(f, "shard {shard} is mid-handoff; retry after the cutover")
            }
            Error::DeadlineExceeded { waiting_for, after } => {
                write!(f, "deadline exceeded waiting for {waiting_for} (after {after:?})")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Error::UnknownItem(ItemId(5)).to_string(), "unknown item x5");
        assert_eq!(Error::UnknownNode(NodeId(2)).to_string(), "unknown node n2");
        assert_eq!(
            Error::DimensionMismatch { left: 3, right: 4 }.to_string(),
            "version vector dimension mismatch: 3 vs 4"
        );
        assert_eq!(Error::NodeDown(NodeId(1)).to_string(), "node n1 is down");
        assert_eq!(
            Error::TokenNotHeld { item: ItemId(1), holder: NodeId(0) }.to_string(),
            "token for x1 is held by n0"
        );
        assert!(Error::Network("boom".into()).to_string().contains("boom"));
        assert_eq!(
            Error::CorruptFrame("crc mismatch".into()).to_string(),
            "corrupt frame: crc mismatch"
        );
        assert_eq!(Error::PeerUnavailable(NodeId(3)).to_string(), "peer n3 unavailable");
        assert_eq!(
            Error::FrameTooLarge { len: 100, limit: 64 }.to_string(),
            "frame of 100 bytes exceeds the 64-byte limit"
        );
        assert_eq!(
            Error::CorruptSnapshot("bad magic".into()).to_string(),
            "corrupt snapshot: bad magic"
        );
        assert_eq!(
            Error::DatabaseExists("mail".into()).to_string(),
            "database \"mail\" already exists"
        );
        assert_eq!(Error::UnknownDatabase("mail".into()).to_string(), "unknown database \"mail\"");
        assert_eq!(
            Error::NotServedHere { target: RouteTarget::Database("mail".into()), owners: vec![] }
                .to_string(),
            "database \"mail\" is not served here"
        );
        assert_eq!(
            Error::NotServedHere {
                target: RouteTarget::Shard(ShardId(3)),
                owners: vec![NodeId(2), NodeId(4)],
            }
            .to_string(),
            "shard s3 is not served here (owners: n2 n4)"
        );
        assert_eq!(
            Error::ShardMoving(ShardId(1)).to_string(),
            "shard s1 is mid-handoff; retry after the cutover"
        );
        assert_eq!(
            Error::DeadlineExceeded {
                waiting_for: "quiescence".into(),
                after: std::time::Duration::from_secs(2),
            }
            .to_string(),
            "deadline exceeded waiting for quiescence (after 2s)"
        );
    }

    #[test]
    fn retryability_classification() {
        assert!(Error::Network("x".into()).is_retryable());
        assert!(Error::CorruptFrame("x".into()).is_retryable());
        assert!(Error::PeerUnavailable(NodeId(0)).is_retryable());
        assert!(!Error::UnknownItem(ItemId(0)).is_retryable());
        assert!(!Error::NodeDown(NodeId(0)).is_retryable());
        assert!(!Error::UnknownDatabase("x".into()).is_retryable());
        // Corrupt durable state is permanent: the same bytes re-read from
        // disk fail the same way, so a retry can never succeed.
        assert!(!Error::CorruptSnapshot("x".into()).is_retryable());
        // An oversized frame is deterministic on the sender: re-encoding
        // the same message re-exceeds the same limit.
        assert!(!Error::FrameTooLarge { len: 2, limit: 1 }.is_retryable());
        // Routing refusals: placement at one peer is deterministic, so
        // "not served here" never changes on a blind retry — the caller
        // must redirect to one of the carried owners instead.
        assert!(!Error::NotServedHere {
            target: RouteTarget::Shard(ShardId(0)),
            owners: vec![NodeId(1)],
        }
        .is_retryable());
        // A mid-handoff shard is a transient window: the same request
        // succeeds once the cutover completes.
        assert!(Error::ShardMoving(ShardId(0)).is_retryable());
        // An exhausted deadline was chosen by the caller: re-waiting the
        // same bound is expected to exhaust it the same way.
        assert!(!Error::DeadlineExceeded {
            waiting_for: "quiescence".into(),
            after: std::time::Duration::from_secs(1),
        }
        .is_retryable());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::UnknownItem(ItemId(0)));
    }
}
