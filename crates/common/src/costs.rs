//! Cost accounting for update-propagation overhead.
//!
//! The paper's central claim (§6) is stated in *operation counts*, not
//! seconds: its protocol detects that no propagation is needed in constant
//! time (one database-version-vector comparison), and performs propagation
//! in time linear in `m`, the number of items actually copied — whereas
//! existing epidemic protocols pay at least one per-item comparison for all
//! `N` items in the database. To reproduce those claims faithfully and
//! portably, every protocol implementation in this workspace increments the
//! counters below at the exact points where the paper charges cost.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Operation counters charged by the replication protocols.
///
/// All counters are cumulative. [`Costs`] forms a commutative monoid under
/// `+` and supports `-` for computing per-phase deltas
/// (`after - before`).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Costs {
    /// Individual version-vector *entry* comparisons. Comparing two vectors
    /// over `n` servers charges `n`. This is the paper's unit of comparison
    /// overhead for both IVVs and DBVVs.
    pub vv_entry_cmps: u64,
    /// Log records examined (walked, selected, or appended) during
    /// propagation. The paper bounds this by the number of items copied
    /// (§4.2: one retained record per item per origin; §6: tails computed in
    /// time linear in records selected).
    pub log_records_examined: u64,
    /// Per-item control-state inspections that are *not* vv comparisons —
    /// e.g. Lotus scanning every item's modification time (§8.1), or the
    /// per-item-VV baseline touching every item's control block each round.
    pub items_scanned: u64,
    /// Data items actually copied (adopted) by a recipient.
    pub items_copied: u64,
    /// Messages sent over the (simulated) network.
    pub messages_sent: u64,
    /// Total bytes sent: control information (version vectors, log records,
    /// item lists) plus payload (item values).
    pub bytes_sent: u64,
    /// Of `bytes_sent`, the bytes that are control overhead rather than item
    /// payload. The paper argues its message adds only a constant amount of
    /// control information per copied item (§6).
    pub control_bytes: u64,
    /// Conflicts declared ("declare inconsistent replicas", §5).
    pub conflicts_detected: u64,
    /// Auxiliary-log records replayed onto regular copies by intra-node
    /// propagation (§5.1 step 3 / Fig. 4).
    pub aux_replays: u64,
    /// Updates silently lost by a protocol that mis-resolves conflicts
    /// (the Lotus behaviour documented in §8.1). Always zero for `epidb`.
    pub lost_updates: u64,
    /// Exchange attempts repeated after a transient transport failure
    /// (lost, corrupt, or reset frames). Zero on a fault-free network.
    pub retries: u64,
    /// Receipts of state the recipient already held (equal or dominated by
    /// IVV comparison) — the price of duplicated or retried deliveries.
    /// Each is a no-op; this counter shows idempotence doing its job.
    pub redundant_deliveries: u64,
    /// Frames rejected by the integrity check before decoding.
    pub corrupt_frames_dropped: u64,
}

impl Costs {
    /// A zeroed counter set.
    pub const ZERO: Costs = Costs {
        vv_entry_cmps: 0,
        log_records_examined: 0,
        items_scanned: 0,
        items_copied: 0,
        messages_sent: 0,
        bytes_sent: 0,
        control_bytes: 0,
        conflicts_detected: 0,
        aux_replays: 0,
        lost_updates: 0,
        retries: 0,
        redundant_deliveries: 0,
        corrupt_frames_dropped: 0,
    };

    /// Total "comparison work" — the quantity the paper's O(N) vs O(m)
    /// argument is about: vv entry comparisons + log records examined +
    /// per-item scans.
    pub fn comparison_work(&self) -> u64 {
        self.vv_entry_cmps + self.log_records_examined + self.items_scanned
    }

    /// Charge one message of `control` control bytes and `payload` payload
    /// bytes.
    #[inline]
    pub fn charge_message(&mut self, control: u64, payload: u64) {
        self.messages_sent += 1;
        self.bytes_sent += control + payload;
        self.control_bytes += control;
    }
}

impl Add for Costs {
    type Output = Costs;
    fn add(self, rhs: Costs) -> Costs {
        Costs {
            vv_entry_cmps: self.vv_entry_cmps + rhs.vv_entry_cmps,
            log_records_examined: self.log_records_examined + rhs.log_records_examined,
            items_scanned: self.items_scanned + rhs.items_scanned,
            items_copied: self.items_copied + rhs.items_copied,
            messages_sent: self.messages_sent + rhs.messages_sent,
            bytes_sent: self.bytes_sent + rhs.bytes_sent,
            control_bytes: self.control_bytes + rhs.control_bytes,
            conflicts_detected: self.conflicts_detected + rhs.conflicts_detected,
            aux_replays: self.aux_replays + rhs.aux_replays,
            lost_updates: self.lost_updates + rhs.lost_updates,
            retries: self.retries + rhs.retries,
            redundant_deliveries: self.redundant_deliveries + rhs.redundant_deliveries,
            corrupt_frames_dropped: self.corrupt_frames_dropped + rhs.corrupt_frames_dropped,
        }
    }
}

impl AddAssign for Costs {
    fn add_assign(&mut self, rhs: Costs) {
        *self = *self + rhs;
    }
}

impl Sub for Costs {
    type Output = Costs;
    /// Delta between two cumulative snapshots. Saturates rather than
    /// panicking so `after - before` is safe even if a counter was reset.
    fn sub(self, rhs: Costs) -> Costs {
        Costs {
            vv_entry_cmps: self.vv_entry_cmps.saturating_sub(rhs.vv_entry_cmps),
            log_records_examined: self
                .log_records_examined
                .saturating_sub(rhs.log_records_examined),
            items_scanned: self.items_scanned.saturating_sub(rhs.items_scanned),
            items_copied: self.items_copied.saturating_sub(rhs.items_copied),
            messages_sent: self.messages_sent.saturating_sub(rhs.messages_sent),
            bytes_sent: self.bytes_sent.saturating_sub(rhs.bytes_sent),
            control_bytes: self.control_bytes.saturating_sub(rhs.control_bytes),
            conflicts_detected: self.conflicts_detected.saturating_sub(rhs.conflicts_detected),
            aux_replays: self.aux_replays.saturating_sub(rhs.aux_replays),
            lost_updates: self.lost_updates.saturating_sub(rhs.lost_updates),
            retries: self.retries.saturating_sub(rhs.retries),
            redundant_deliveries: self
                .redundant_deliveries
                .saturating_sub(rhs.redundant_deliveries),
            corrupt_frames_dropped: self
                .corrupt_frames_dropped
                .saturating_sub(rhs.corrupt_frames_dropped),
        }
    }
}

impl fmt::Display for Costs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vv_cmps={} log_recs={} scans={} copied={} msgs={} bytes={} (ctl {}) conflicts={} replays={} lost={} retries={} redundant={} corrupt={}",
            self.vv_entry_cmps,
            self.log_records_examined,
            self.items_scanned,
            self.items_copied,
            self.messages_sent,
            self.bytes_sent,
            self.control_bytes,
            self.conflicts_detected,
            self.aux_replays,
            self.lost_updates,
            self.retries,
            self.redundant_deliveries,
            self.corrupt_frames_dropped,
        )
    }
}

/// Wire-size constants shared by all protocols so that byte accounting is
/// comparable across them. These model a compact binary encoding.
pub mod wire {
    /// Fixed per-message envelope (source, destination, type, length).
    pub const MSG_HEADER: u64 = 16;
    /// One version-vector entry (a `u64` counter).
    pub const VV_ENTRY: u64 = 8;
    /// One item identifier.
    pub const ITEM_ID: u64 = 4;
    /// One log record `(item, m)`: item id + sequence number.
    pub const LOG_RECORD: u64 = ITEM_ID + 8;
    /// One per-item sequence number (Lotus-style).
    pub const SEQNO: u64 = 8;
    /// One timestamp.
    pub const TIMESTAMP: u64 = 8;
    /// One digest-tree range `[start, end)`: two `u32` item indices.
    pub const RECON_RANGE: u64 = 8;
    /// One digest-tree node in a recon reply: its range + a 64-bit digest.
    pub const RECON_DIGEST: u64 = RECON_RANGE + 8;
    /// One retained log record shipped with a reconciled item
    /// (origin `u16` + sequence number `u64`).
    pub const RECON_RECORD: u64 = 10;

    /// Size of a version vector over `n` servers.
    pub fn vv(n: usize) -> u64 {
        VV_ENTRY * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Costs {
        Costs {
            vv_entry_cmps: 10,
            log_records_examined: 20,
            items_scanned: 30,
            items_copied: 4,
            messages_sent: 2,
            bytes_sent: 1000,
            control_bytes: 100,
            conflicts_detected: 1,
            aux_replays: 3,
            lost_updates: 0,
            retries: 5,
            redundant_deliveries: 6,
            corrupt_frames_dropped: 7,
        }
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = sample();
        let b = Costs { vv_entry_cmps: 5, ..Costs::ZERO };
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn sub_saturates() {
        let a = Costs::ZERO;
        let b = sample();
        assert_eq!(a - b, Costs::ZERO);
    }

    #[test]
    fn comparison_work_sums_comparison_counters() {
        assert_eq!(sample().comparison_work(), 60);
    }

    #[test]
    fn charge_message_accumulates() {
        let mut c = Costs::ZERO;
        c.charge_message(16, 100);
        c.charge_message(16, 0);
        assert_eq!(c.messages_sent, 2);
        assert_eq!(c.bytes_sent, 132);
        assert_eq!(c.control_bytes, 32);
    }

    #[test]
    fn zero_is_identity() {
        let a = sample();
        assert_eq!(a + Costs::ZERO, a);
        assert_eq!(Costs::ZERO + a, a);
    }

    #[test]
    fn display_is_stable() {
        let s = sample().to_string();
        assert!(s.contains("vv_cmps=10"));
        assert!(s.contains("lost=0"));
        assert!(s.contains("retries=5"));
        assert!(s.contains("redundant=6"));
        assert!(s.contains("corrupt=7"));
    }

    #[test]
    fn wire_vv_scales_with_n() {
        assert_eq!(wire::vv(8), 64);
        assert_eq!(wire::vv(0), 0);
    }
}
