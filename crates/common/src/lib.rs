#![warn(missing_docs)]

//! Shared foundation types for the `epidb` workspace.
//!
//! This crate deliberately has no dependencies. It provides:
//!
//! * [`NodeId`] / [`ItemId`] — strongly typed identifiers for servers and
//!   data items (the paper assumes a fixed set of servers replicating a
//!   database of data items, §2).
//! * [`Costs`] — the cost-accounting counters used to reproduce the paper's
//!   analytical overhead claims (§6). The paper argues about *counts* —
//!   version-vector entry comparisons, log records examined, items scanned —
//!   so every protocol in this workspace meters those counts explicitly
//!   rather than relying only on wall-clock time.
//! * [`ConflictEvent`] — the "declare inconsistent replicas" events of the
//!   protocol (§5, correctness criterion 1 of §2.1).
//! * [`Error`] — the shared error type.

pub mod conflict;
pub mod costs;
pub mod error;
pub mod ids;
pub mod trace;

pub use conflict::{ConflictEvent, ConflictSite};
pub use costs::Costs;
pub use error::{Error, InvariantViolation, Result, RouteTarget};
pub use ids::{ItemId, NodeId, ShardId};
pub use trace::{OrdTag, TraceEvent, TraceRing, TraceStep};
