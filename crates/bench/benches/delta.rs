//! T8 (wall-clock) — whole-item vs. delta propagation for small edits on
//! large values.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use epidb_common::{ItemId, NodeId};
use epidb_core::{pull, pull_delta, Replica};
use epidb_store::UpdateOp;
use std::hint::black_box;

const M: usize = 50;

/// Source/destination already sharing a base of M items of `value_size`
/// bytes; the source then applies one small edit per item.
fn edited_pair(value_size: usize) -> (Replica, Replica) {
    let mut src = Replica::new(NodeId(0), 2, 1_000);
    let mut dst = Replica::new(NodeId(1), 2, 1_000);
    src.enable_delta(8 << 20);
    dst.enable_delta(8 << 20);
    for i in 0..M {
        src.update(ItemId::from_index(i), UpdateOp::set(vec![0x22; value_size])).unwrap();
    }
    pull(&mut dst, &mut src).unwrap();
    for i in 0..M {
        src.update(ItemId::from_index(i), UpdateOp::write_range(8, &b"edited!!"[..])).unwrap();
    }
    (src, dst)
}

fn bench_modes(c: &mut Criterion) {
    for value_size in [1_024usize, 16_384] {
        let mut g = c.benchmark_group(format!("sync_after_small_edits_{value_size}B"));
        g.sample_size(10);
        let (src, dst) = edited_pair(value_size);
        g.bench_with_input(BenchmarkId::new("whole_item", value_size), &(), |bench, _| {
            bench.iter_batched(
                || (src.clone(), dst.clone()),
                |(mut s, mut d)| {
                    let out = black_box(pull(&mut d, &mut s).unwrap());
                    (out, s, d) // returned so drops fall outside the timing
                },
                BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("delta", value_size), &(), |bench, _| {
            bench.iter_batched(
                || (src.clone(), dst.clone()),
                |(mut s, mut d)| {
                    let out = black_box(pull_delta(&mut d, &mut s).unwrap());
                    (out, s, d) // returned so drops fall outside the timing
                },
                BatchSize::LargeInput,
            );
        });
        g.finish();
    }
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
