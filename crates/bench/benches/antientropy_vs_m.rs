//! T2 (wall-clock) — one pull as the number of changed items m grows, at
//! fixed N: epidb's cost is O(m).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use epidb_bench::prepared_pair;
use epidb_core::pull;
use std::hint::black_box;

const N_ITEMS: usize = 100_000;

fn bench_pull_vs_m(c: &mut Criterion) {
    let mut g = c.benchmark_group("pull_epidb_vs_m");
    g.sample_size(10);
    for m in [10usize, 100, 1_000, 10_000] {
        let (src, dst) = prepared_pair(4, N_ITEMS, m);
        g.throughput(Throughput::Elements(m as u64));
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter_batched(
                || (src.clone(), dst.clone()),
                |(mut s, mut d)| {
                    let out = black_box(pull(&mut d, &mut s).unwrap());
                    (out, s, d) // returned so drops fall outside the timing
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pull_vs_m);
criterion_main!(benches);
