//! Ablation: the `IsSelected` flag trick for computing `S` in O(m) (§6).
//!
//! The paper attaches an `IsSelected` flag to every item so that, while
//! building the tail vector, the union `S` of referenced items is computed
//! with O(1) work per record and O(|S|) reset work — versus the obvious
//! hash-set dedup. This bench isolates exactly that design choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidb_common::ItemId;
use epidb_log::LogRecord;
use std::collections::HashSet;
use std::hint::black_box;

/// Build n_tails tails whose records overlap heavily (each item appears in
/// every tail), the worst case for dedup work.
fn make_tails(n_tails: usize, m: usize) -> Vec<Vec<LogRecord>> {
    (0..n_tails)
        .map(|t| {
            (0..m)
                .map(|i| LogRecord { item: ItemId::from_index(i), m: (t * m + i) as u64 + 1 })
                .collect()
        })
        .collect()
}

fn union_with_flags(tails: &[Vec<LogRecord>], flags: &mut [bool]) -> Vec<ItemId> {
    let mut s = Vec::new();
    for tail in tails {
        for rec in tail {
            let f = &mut flags[rec.item.index()];
            if !*f {
                *f = true;
                s.push(rec.item);
            }
        }
    }
    for x in &s {
        flags[x.index()] = false;
    }
    s
}

fn union_with_hashset(tails: &[Vec<LogRecord>]) -> Vec<ItemId> {
    let mut seen = HashSet::new();
    let mut s = Vec::new();
    for tail in tails {
        for rec in tail {
            if seen.insert(rec.item) {
                s.push(rec.item);
            }
        }
    }
    s
}

fn bench_s_computation(c: &mut Criterion) {
    const N_ITEMS: usize = 1_000_000;
    const N_TAILS: usize = 8;
    let mut g = c.benchmark_group("s_union_ablation");
    g.sample_size(20);
    let mut flags = vec![false; N_ITEMS];
    for m in [100usize, 10_000] {
        let tails = make_tails(N_TAILS, m);
        g.throughput(Throughput::Elements((N_TAILS * m) as u64));
        g.bench_with_input(BenchmarkId::new("is_selected_flags", m), &m, |bench, _| {
            bench.iter(|| black_box(union_with_flags(&tails, &mut flags)));
        });
        g.bench_with_input(BenchmarkId::new("hashset", m), &m, |bench, _| {
            bench.iter(|| black_box(union_with_hashset(&tails)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_s_computation);
criterion_main!(benches);
