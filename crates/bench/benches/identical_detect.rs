//! F2 (wall-clock) — detecting that two replicas are identical: epidb's
//! DBVV comparison is constant time in N; per-item anti-entropy and a
//! Lotus-style scan are linear.
//!
//! The pull between identical replicas does not mutate replica state
//! beyond counters, so the benches iterate in place.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epidb_baselines::{LotusCluster, PerItemVvCluster, SyncProtocol};
use epidb_bench::identical_pair;
use epidb_common::{ItemId, NodeId};
use epidb_core::pull;
use epidb_store::UpdateOp;
use std::hint::black_box;

const M: usize = 50;

fn prime<P: SyncProtocol>(proto: &mut P) {
    for i in 0..M {
        proto.update(NodeId(0), ItemId::from_index(i), UpdateOp::set(vec![0xCD; 64])).unwrap();
    }
    proto.sync(NodeId(1), NodeId(0)).unwrap();
    proto.sync(NodeId(2), NodeId(0)).unwrap();
}

fn bench_epidb(c: &mut Criterion) {
    let mut g = c.benchmark_group("identical_epidb");
    g.sample_size(20);
    for n_items in [1_000usize, 100_000, 1_000_000] {
        let (mut src, mut dst) = identical_pair(3, n_items, M);
        g.bench_with_input(BenchmarkId::from_parameter(n_items), &n_items, |bench, _| {
            bench.iter(|| black_box(pull(&mut dst, &mut src).unwrap()));
        });
    }
    g.finish();
}

fn bench_per_item_vv(c: &mut Criterion) {
    let mut g = c.benchmark_group("identical_per_item_vv");
    g.sample_size(10);
    for n_items in [1_000usize, 100_000] {
        let mut cluster = PerItemVvCluster::new(3, n_items);
        prime(&mut cluster);
        g.bench_with_input(BenchmarkId::from_parameter(n_items), &n_items, |bench, _| {
            bench.iter(|| black_box(cluster.sync(NodeId(1), NodeId(2)).unwrap()));
        });
    }
    g.finish();
}

fn bench_lotus(c: &mut Criterion) {
    let mut g = c.benchmark_group("identical_lotus_indirect");
    g.sample_size(10);
    for n_items in [1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n_items), &n_items, |bench, &n| {
            // Lotus's scan only triggers while its per-destination fast
            // path is defeated, which one measured sync then re-arms — so
            // re-prime per iteration batch.
            bench.iter_batched(
                || {
                    let mut cluster = LotusCluster::new(3, n);
                    prime(&mut cluster);
                    cluster
                },
                |mut cluster| {
                    let out = black_box(cluster.sync(NodeId(1), NodeId(2)).unwrap());
                    (out, cluster) // returned so the drop falls outside the timing
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epidb, bench_per_item_vv, bench_lotus);
criterion_main!(benches);
