//! F5 (wall-clock) — one pull (m = 100 items) as the server count n grows:
//! the cost is O(n·m) control work, independent of N.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use epidb_bench::prepared_pair;
use epidb_core::pull;
use std::hint::black_box;

const N_ITEMS: usize = 20_000;
const M: usize = 100;

fn bench_pull_vs_servers(c: &mut Criterion) {
    let mut g = c.benchmark_group("pull_epidb_vs_servers");
    g.sample_size(10);
    for n in [2usize, 8, 32, 64] {
        let (src, dst) = prepared_pair(n, N_ITEMS, M);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter_batched(
                || (src.clone(), dst.clone()),
                |(mut s, mut d)| {
                    let out = black_box(pull(&mut d, &mut s).unwrap());
                    (out, s, d) // returned so drops fall outside the timing
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pull_vs_servers);
criterion_main!(benches);
