//! T4 (wall-clock) — out-of-bound copying and the intra-node replay path:
//! the OOB fetch itself is constant time; replay costs O(pending updates).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use epidb_common::{ItemId, NodeId};
use epidb_core::{oob_copy, pull, Replica};
use epidb_store::UpdateOp;
use std::hint::black_box;

fn bench_oob_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("oob_fetch");
    g.sample_size(20);
    // Fetch cost must be independent of database size.
    for n_items in [1_000usize, 100_000] {
        let mut src = Replica::new(NodeId(0), 2, n_items);
        src.update(ItemId(0), UpdateOp::set(vec![0xEE; 256])).unwrap();
        let dst = Replica::new(NodeId(1), 2, n_items);
        g.bench_with_input(BenchmarkId::from_parameter(n_items), &n_items, |bench, _| {
            bench.iter_batched(
                || dst.clone(),
                |mut d| {
                    let out = black_box(oob_copy(&mut d, &mut src, ItemId(0)).unwrap());
                    (out, d) // returned so the drop falls outside the timing
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_intranode_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("intranode_replay");
    g.sample_size(10);
    for pending in [1usize, 10, 100] {
        // B fetches an item out-of-bound and queues `pending` aux updates;
        // the measured step is the pull that replays them all.
        let setup = || {
            let mut a = Replica::new(NodeId(0), 2, 100);
            a.update(ItemId(0), UpdateOp::set(vec![1u8; 64])).unwrap();
            let mut b = Replica::new(NodeId(1), 2, 100);
            oob_copy(&mut b, &mut a, ItemId(0)).unwrap();
            for k in 0..pending {
                b.update(ItemId(0), UpdateOp::append(vec![k as u8])).unwrap();
            }
            (a, b)
        };
        g.throughput(Throughput::Elements(pending as u64));
        g.bench_with_input(BenchmarkId::from_parameter(pending), &pending, |bench, _| {
            bench.iter_batched(
                setup,
                |(mut a, mut b)| {
                    let out = black_box(pull(&mut b, &mut a).unwrap());
                    (out, a, b) // returned so drops fall outside the timing
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_oob_fetch, bench_intranode_replay);
criterion_main!(benches);
