//! Micro-benchmarks for the version-vector algebra: comparison and merge
//! cost O(n) in the server count, independent of everything else.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epidb_common::NodeId;
use epidb_vv::{DbVersionVector, VersionVector};
use std::hint::black_box;

fn bench_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("vv_compare");
    g.sample_size(20);
    for n in [4usize, 16, 64, 256] {
        let a = VersionVector::from_entries((0..n as u64).collect());
        let mut b = a.clone();
        b.bump(NodeId((n - 1) as u16));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.compare(black_box(&b))));
        });
    }
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("vv_merge_max");
    g.sample_size(20);
    for n in [4usize, 64, 256] {
        let a = VersionVector::from_entries((0..n as u64).collect());
        let b = VersionVector::from_entries((0..n as u64).rev().collect());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut m = a.clone();
                m.merge_max(black_box(&b)).unwrap();
                black_box(m)
            });
        });
    }
    g.finish();
}

fn bench_dbvv_identical_detection(c: &mut Criterion) {
    // The headline O(n) constant-time check: one DBVV comparison decides
    // that no propagation is needed.
    let mut g = c.benchmark_group("dbvv_identical_detection");
    g.sample_size(20);
    for n in [4usize, 16, 64] {
        let mut a = DbVersionVector::zero(n);
        a.record_local_update(NodeId(0));
        let b = a.clone();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.compare(black_box(&b))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compare, bench_merge, bench_dbvv_identical_detection);
criterion_main!(benches);
