//! T1 (wall-clock) — one anti-entropy pull transferring m = 100 items, as
//! database size N grows: epidb flat, per-item version vectors linear.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use epidb_baselines::{PerItemVvCluster, SyncProtocol};
use epidb_bench::prepared_pair;
use epidb_common::{ItemId, NodeId};
use epidb_core::pull;
use epidb_store::UpdateOp;
use std::hint::black_box;

const M: usize = 100;

fn bench_epidb(c: &mut Criterion) {
    let mut g = c.benchmark_group("pull_epidb_vs_N");
    g.sample_size(10);
    for n_items in [1_000usize, 10_000, 100_000] {
        let (src, dst) = prepared_pair(4, n_items, M);
        g.bench_with_input(BenchmarkId::from_parameter(n_items), &n_items, |bench, _| {
            bench.iter_batched(
                || (src.clone(), dst.clone()),
                |(mut s, mut d)| {
                    let out = black_box(pull(&mut d, &mut s).unwrap());
                    (out, s, d) // returned so drops fall outside the timing
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_per_item_vv(c: &mut Criterion) {
    let mut g = c.benchmark_group("pull_per_item_vv_vs_N");
    g.sample_size(10);
    for n_items in [1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n_items), &n_items, |bench, &n| {
            bench.iter_batched(
                || {
                    let mut c = PerItemVvCluster::new(4, n);
                    for i in 0..M {
                        c.update(NodeId(0), ItemId::from_index(i), UpdateOp::set(vec![0xAB; 64]))
                            .unwrap();
                    }
                    c
                },
                |mut c| {
                    let out = black_box(c.sync(NodeId(1), NodeId(0)).unwrap());
                    (out, c) // returned so the drop falls outside the timing
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epidb, bench_per_item_vv);
criterion_main!(benches);
