//! F1 — the log vector's O(1) `AddLogRecord` (paper Fig. 1 / §6).
//!
//! The add rate must be flat as the retained log grows from 10² to 10⁶
//! records, and computing a propagation tail must cost O(|tail|).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidb_common::{ItemId, NodeId};
use epidb_log::{AuxLog, LogRecord, LogVector};
use epidb_store::UpdateOp;
use epidb_vv::VersionVector;
use std::hint::black_box;

fn bench_add_record_flat_in_log_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("logvec_add_record");
    g.sample_size(20);
    for prefill in [100usize, 10_000, 1_000_000] {
        // One component holding `prefill` records; adds replace existing
        // records (the steady-state path).
        let mut log = LogVector::new(1, prefill + 1);
        let mut m = 0u64;
        for i in 0..prefill {
            m += 1;
            log.add_record(NodeId(0), LogRecord { item: ItemId::from_index(i), m });
        }
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(prefill), &prefill, |bench, _| {
            bench.iter(|| {
                m += 1;
                log.add_record(
                    NodeId(0),
                    LogRecord { item: ItemId::from_index((m % prefill as u64) as usize), m },
                );
                black_box(log.total_len())
            });
        });
    }
    g.finish();
}

fn bench_tail_after(c: &mut Criterion) {
    let mut g = c.benchmark_group("logvec_tail_after");
    g.sample_size(20);
    // A 100k-record component; tails of different lengths must cost
    // proportionally to their own size, not the component's.
    let total = 100_000usize;
    let mut log = LogVector::new(1, total);
    for i in 0..total {
        log.add_record(NodeId(0), LogRecord { item: ItemId::from_index(i), m: i as u64 + 1 });
    }
    for tail_len in [10u64, 1_000, 100_000] {
        let threshold = total as u64 - tail_len;
        g.throughput(Throughput::Elements(tail_len));
        g.bench_with_input(BenchmarkId::from_parameter(tail_len), &tail_len, |bench, _| {
            bench.iter(|| {
                let mut examined = 0;
                black_box(log.tail_after(NodeId(0), threshold, &mut examined))
            });
        });
    }
    g.finish();
}

fn bench_auxlog_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("auxlog_push_pop");
    g.sample_size(20);
    let mut log = AuxLog::new();
    g.bench_function("push_then_pop", |bench| {
        bench.iter(|| {
            log.push(ItemId(3), VersionVector::zero(4), UpdateOp::set(vec![0u8; 32]));
            black_box(log.pop_earliest(ItemId(3)))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_add_record_flat_in_log_size, bench_tail_after, bench_auxlog_ops);
criterion_main!(benches);
