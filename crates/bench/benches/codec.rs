//! Codec and snapshot throughput: encoding/decoding protocol messages and
//! persisting replica state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidb_bench::prepared_pair;
use epidb_core::codec::{decode_response, encode_response};
use epidb_core::{PropagationResponse, ProtocolResponse, Replica};
use std::hint::black_box;

fn bench_message_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_pull_response");
    g.sample_size(20);
    for m in [10usize, 1_000] {
        // A realistic pull response carrying m shipped items.
        let (mut src, dst) = prepared_pair(4, 10_000, m);
        let response = src.prepare_propagation(&dst.dbvv().clone());
        let msg = ProtocolResponse::Pull(response);
        let encoded = encode_response(&msg);
        g.throughput(Throughput::Bytes(encoded.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", m), &m, |bench, _| {
            bench.iter(|| black_box(encode_response(black_box(&msg))));
        });
        g.bench_with_input(BenchmarkId::new("decode", m), &m, |bench, _| {
            bench.iter(|| black_box(decode_response(black_box(&encoded)).unwrap()));
        });
        // Sanity: the decoded payload matches the original item count.
        if let ProtocolResponse::Pull(PropagationResponse::Payload(p)) =
            decode_response(&encoded).unwrap()
        {
            assert_eq!(p.items.len(), m);
        }
    }
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot");
    g.sample_size(10);
    for n_items in [1_000usize, 100_000] {
        let (src, _) = prepared_pair(4, n_items, 100.min(n_items));
        let buf = src.to_snapshot();
        g.throughput(Throughput::Bytes(buf.len() as u64));
        g.bench_with_input(BenchmarkId::new("save", n_items), &n_items, |bench, _| {
            bench.iter(|| black_box(src.to_snapshot()));
        });
        g.bench_with_input(BenchmarkId::new("restore", n_items), &n_items, |bench, _| {
            bench.iter_batched(
                || (),
                // The restored replica is returned so its drop falls
                // outside the timing.
                |()| black_box(Replica::from_snapshot(black_box(&buf)).unwrap()),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_message_roundtrip, bench_snapshot);
criterion_main!(benches);
