//! `chaos_soak` — the seeded chaos soak harness.
//!
//! Runs a randomized fault schedule — loss, duplication, reordering,
//! corruption, mid-exchange resets, healing partitions — over all three
//! runtimes (in-process, threaded channels, TCP sockets) with paranoid
//! auditing on, then heals every link and asserts:
//!
//! * **convergence** — every replica reads the expected final value of
//!   every item, DBVVs are equal, and no auxiliary state remains;
//! * **invariants** — `check_invariants` passes on every replica (which
//!   includes DBVV == ΣIVV), on top of the per-step paranoid audits that
//!   ran throughout;
//! * **accounting** — every corrupted frame the injector produced was
//!   dropped and counted (`corrupt_frames_dropped` equals the injector's
//!   ground truth), faults forced retries, and deliberate duplicate
//!   out-of-bound fetches surfaced as `redundant_deliveries`;
//! * **determinism** — the whole soak is a pure function of the seed: each
//!   runtime is run twice and must produce byte-for-byte identical
//!   [`Costs`] and injection stats.
//!
//! The seed is printed on every run; a failing soak replays exactly with
//! `--seed <printed seed>`.
//!
//! With `--restart-from-disk`, the soak instead runs the durable runtimes
//! (threaded and TCP, each node journaling to an on-disk WAL with
//! snapshot checkpoints) under a seeded kill/restart schedule: nodes are
//! crashed mid-soak — really dropping their in-memory replicas — and
//! later revived from disk, with paranoid audits on throughout. After the
//! schedule, every node is revived and the soak asserts convergence to
//! the per-item ground truth, replica invariants, and byte-identical
//! [`Costs`] across two same-seed runs.
//!
//! With `--async`, the chaos soak runs against the nonblocking reactor
//! runtime ([`AsyncTcpCluster`]) alone: the same seeded fault schedule —
//! including message loss and mid-exchange resets tearing sockets out
//! from under parked connections — with paranoid audits on, asserting the
//! same convergence, invariant, accounting, and replay-determinism
//! properties as the three-runtime soak.
//!
//! With `--sharded`, the soak instead runs a partially replicated
//! deployment — two replica groups of two nodes each, each group owning
//! one disjoint shard — over all three sharded runtimes. Per-shard chaos
//! pulls among co-owners plus occasional cross-group out-of-bound fetches
//! run with paranoid audits on; the soak then asserts per-shard
//! convergence to ground truth, replica invariants, fault accounting, and
//! that the same seed produces byte-identical *per-node* [`Costs`] both
//! across passes and across all three runtimes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p epidb-bench --bin chaos_soak -- \
//!     [--smoke] [--seed N] [--rounds N] [--restart-from-disk] [--sharded] [--async]
//! ```

use std::path::PathBuf;
use std::time::Duration;

use epidb_common::{Costs, ItemId, NodeId, ShardId};
use epidb_core::{
    ChaosLink, ChaosStats, FaultPlan, PartitionWindow, PullOutcome, RetryPolicy, ShardMap,
    ShardedNode,
};
use epidb_durable::DurabilityConfig;
use epidb_net::{
    AsyncTcpCluster, AsyncTcpConfig, ClusterConfig, ShardedConfig, ShardedTcpCluster,
    ShardedThreadedCluster, TcpCluster, TcpConfig, ThreadedCluster,
};
use epidb_sim::{EpidbCluster, ShardedSimCluster};
use epidb_store::UpdateOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// --- soak parameters --------------------------------------------------------

#[derive(Clone, Copy)]
struct SoakParams {
    n_nodes: usize,
    n_items: usize,
    rounds: usize,
    updates_per_round: usize,
}

const SMOKE: SoakParams = SoakParams { n_nodes: 3, n_items: 24, rounds: 8, updates_per_round: 6 };
const FULL: SoakParams = SoakParams { n_nodes: 4, n_items: 96, rounds: 40, updates_per_round: 10 };

const DELTA_BUDGET: usize = 1 << 20;
const MAX_HEAL_SWEEPS: usize = 12;

fn retry_policy() -> RetryPolicy {
    // Plenty of attempts, no backoff sleeping: the soak is synchronous, so
    // spinning the round again immediately is both fast and deterministic.
    RetryPolicy::attempts(48)
}

/// Derive a non-trivial fault plan from the seed. Probabilities are kept
/// below the levels where 48 attempts could plausibly fail to land a
/// round, and partitions are finite windows, so every schedule converges.
fn derive_plan(rng: &mut StdRng) -> FaultPlan {
    let pct = |rng: &mut StdRng, lo: u64, hi: u64| rng.gen_range(lo..hi) as f64 / 100.0;
    let mut partitions = Vec::new();
    for _ in 0..rng.gen_range(1..3u32) {
        let from = rng.gen_range(3..40u64);
        partitions.push(PartitionWindow { from, until: from + rng.gen_range(2..8u64) });
    }
    FaultPlan {
        request_loss: pct(rng, 5, 18),
        response_loss: pct(rng, 5, 18),
        duplication: pct(rng, 2, 12),
        reorder: pct(rng, 2, 12),
        corruption: pct(rng, 3, 12),
        reset: pct(rng, 1, 8),
        latency: Duration::ZERO,
        partitions,
    }
}

// --- runtime abstraction ----------------------------------------------------

/// The slice of each runtime the soak drives: updates, chaos-wrapped delta
/// pulls, out-of-bound fetches, and inspection.
trait SoakRuntime {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>);
    fn pull_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome>;
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId);
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8>;
    fn converged(&self, n_nodes: usize) -> bool;
    fn costs(&self, n_nodes: usize) -> Costs;
    fn check_invariants(&self, n_nodes: usize);
}

struct InProc(EpidbCluster);

impl SoakRuntime for InProc {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        use epidb_baselines::SyncProtocol;
        self.0.update(node, item, UpdateOp::set(value)).expect("update");
    }

    fn pull_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome> {
        self.0.pull_delta_pair_chaos(recipient, source, link, policy)
    }

    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        self.0.oob(recipient, source, item).expect("oob");
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.0.replica(node).read_regular(item).expect("item").as_bytes().to_vec()
    }

    fn converged(&self, n_nodes: usize) -> bool {
        let reference = self.0.replica(NodeId(0)).dbvv().clone();
        (0..n_nodes).all(|i| {
            let r = self.0.replica(NodeId::from_index(i));
            r.aux_item_count() == 0 && r.dbvv().compare(&reference) == epidb_vv::VvOrd::Equal
        })
    }

    fn costs(&self, _n_nodes: usize) -> Costs {
        use epidb_baselines::SyncProtocol;
        self.0.costs()
    }

    fn check_invariants(&self, _n_nodes: usize) {
        self.0.assert_invariants();
    }
}

struct Threaded(ThreadedCluster);

impl SoakRuntime for Threaded {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        self.0.update(node, item, UpdateOp::set(value)).expect("update");
    }

    fn pull_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome> {
        self.0.pull_delta_now_chaos(recipient, source, link, policy)
    }

    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        self.0.oob_fetch(recipient, source, item).expect("oob");
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.0.read(node, item).expect("read")
    }

    fn converged(&self, n_nodes: usize) -> bool {
        let reference = self.0.with_replica(NodeId(0), |r| r.dbvv().clone());
        (0..n_nodes).all(|i| {
            self.0.with_replica(NodeId::from_index(i), |r| {
                r.aux_item_count() == 0 && r.dbvv().compare(&reference) == epidb_vv::VvOrd::Equal
            })
        })
    }

    fn costs(&self, n_nodes: usize) -> Costs {
        (0..n_nodes)
            .map(|i| self.0.with_replica(NodeId::from_index(i), |r| r.costs()))
            .fold(Costs::ZERO, |a, b| a + b)
    }

    fn check_invariants(&self, n_nodes: usize) {
        for i in 0..n_nodes {
            self.0
                .with_replica(NodeId::from_index(i), |r| r.check_invariants())
                .unwrap_or_else(|e| panic!("invariant violated at node {i}: {e}"));
        }
    }
}

struct Tcp(TcpCluster);

impl SoakRuntime for Tcp {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        self.0.update(node, item, UpdateOp::set(value)).expect("update");
    }

    fn pull_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome> {
        self.0.pull_delta_now_chaos(recipient, source, link, policy)
    }

    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        self.0.oob_fetch(recipient, source, item).expect("oob");
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.0.read(node, item).expect("read")
    }

    fn converged(&self, n_nodes: usize) -> bool {
        let reference = self.0.with_replica(NodeId(0), |r| r.dbvv().clone());
        (0..n_nodes).all(|i| {
            self.0.with_replica(NodeId::from_index(i), |r| {
                r.aux_item_count() == 0 && r.dbvv().compare(&reference) == epidb_vv::VvOrd::Equal
            })
        })
    }

    fn costs(&self, n_nodes: usize) -> Costs {
        (0..n_nodes)
            .map(|i| self.0.with_replica(NodeId::from_index(i), |r| r.costs()))
            .fold(Costs::ZERO, |a, b| a + b)
    }

    fn check_invariants(&self, n_nodes: usize) {
        for i in 0..n_nodes {
            self.0
                .with_replica(NodeId::from_index(i), |r| r.check_invariants())
                .unwrap_or_else(|e| panic!("invariant violated at node {i}: {e}"));
        }
    }
}

struct AsyncTcp(AsyncTcpCluster);

impl SoakRuntime for AsyncTcp {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        self.0.update(node, item, UpdateOp::set(value)).expect("update");
    }

    fn pull_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome> {
        self.0.pull_delta_now_chaos(recipient, source, link, policy)
    }

    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        self.0.oob_fetch(recipient, source, item).expect("oob");
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.0.read(node, item).expect("read")
    }

    fn converged(&self, n_nodes: usize) -> bool {
        let reference = self.0.with_replica(NodeId(0), |r| r.dbvv().clone());
        (0..n_nodes).all(|i| {
            self.0.with_replica(NodeId::from_index(i), |r| {
                r.aux_item_count() == 0 && r.dbvv().compare(&reference) == epidb_vv::VvOrd::Equal
            })
        })
    }

    fn costs(&self, n_nodes: usize) -> Costs {
        (0..n_nodes)
            .map(|i| self.0.with_replica(NodeId::from_index(i), |r| r.costs()))
            .fold(Costs::ZERO, |a, b| a + b)
    }

    fn check_invariants(&self, n_nodes: usize) {
        for i in 0..n_nodes {
            self.0
                .with_replica(NodeId::from_index(i), |r| r.check_invariants())
                .unwrap_or_else(|e| panic!("invariant violated at node {i}: {e}"));
        }
    }
}

// --- the soak ---------------------------------------------------------------

struct SoakResult {
    costs: Costs,
    stats: ChaosStats,
    heal_sweeps: usize,
    double_oobs: u64,
}

fn sum_stats(links: &[Vec<Option<ChaosLink>>]) -> ChaosStats {
    let mut total = ChaosStats::default();
    for row in links {
        for link in row.iter().flatten() {
            let s = link.stats;
            total.exchanges += s.exchanges;
            total.lost_requests += s.lost_requests;
            total.lost_responses += s.lost_responses;
            total.duplicated += s.duplicated;
            total.reordered += s.reordered;
            total.redelivered += s.redelivered;
            total.corrupted += s.corrupted;
            total.resets += s.resets;
            total.partitioned += s.partitioned;
            total.delivered += s.delivered;
        }
    }
    total
}

/// Run one soak: randomized updates under chaos, then heal and converge.
/// Deterministic in `(seed, plan, params)`.
fn run_soak(
    runtime: &mut dyn SoakRuntime,
    seed: u64,
    plan: &FaultPlan,
    params: SoakParams,
) -> SoakResult {
    let SoakParams { n_nodes, n_items, rounds, updates_per_round } = params;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50A4_0A5E);
    let policy = retry_policy();

    // One persistent chaos link per directed pair, deterministic per pair.
    let mut links: Vec<Vec<Option<ChaosLink>>> = (0..n_nodes)
        .map(|r| {
            (0..n_nodes)
                .map(|s| {
                    (r != s).then(|| {
                        let link_seed = seed.wrapping_add(
                            ((r * n_nodes + s) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        ChaosLink::new(link_seed, plan.clone())
                    })
                })
                .collect()
        })
        .collect();

    // Per-item single-writer: node i owns items with item % n == i, so
    // schedules are conflict-free and the expected final value is the last
    // write. Track it to assert convergence against ground truth.
    let mut expected: Vec<Vec<u8>> = vec![Vec::new(); n_items];
    let mut double_oobs = 0u64;

    for _round in 0..rounds {
        for _ in 0..updates_per_round {
            let node = rng.gen_range(0..n_nodes);
            let slot = rng.gen_range(0..n_items.div_ceil(n_nodes));
            let item = node + slot * n_nodes;
            if item >= n_items {
                continue;
            }
            // Mix inline values with ones large enough to travel as shared
            // payload segments.
            let len = if rng.gen_bool(0.25) { 200 } else { rng.gen_range(1..48usize) };
            let byte = rng.gen_range(0..=255u64) as u8;
            let value = vec![byte; len];
            expected[item] = value.clone();
            runtime.update(NodeId::from_index(node), ItemId(item as u32), value);
        }

        // Every node pulls from one random peer, through its chaos link.
        for (r, row) in links.iter_mut().enumerate() {
            let mut s = rng.gen_range(0..n_nodes);
            if s == r {
                s = (s + 1) % n_nodes;
            }
            let link = row[s].as_mut().expect("distinct pair");
            let _ = runtime.pull_chaos(NodeId::from_index(r), NodeId::from_index(s), link, &policy);
        }

        // Occasionally fetch a hot item out-of-bound — twice: the second
        // fetch is already current at the recipient and must be counted as
        // a redundant delivery.
        if rng.gen_bool(0.5) {
            let item = rng.gen_range(0..n_items);
            let source = item % n_nodes;
            let mut recipient = rng.gen_range(0..n_nodes);
            if recipient == source {
                recipient = (recipient + 1) % n_nodes;
            }
            let (recipient, source) = (NodeId::from_index(recipient), NodeId::from_index(source));
            runtime.oob(recipient, source, ItemId(item as u32));
            runtime.oob(recipient, source, ItemId(item as u32));
            double_oobs += 1;
        }
    }

    // Heal every link, then sweep full-mesh pulls until quiescent.
    for row in &mut links {
        for link in row.iter_mut().flatten() {
            link.set_plan(FaultPlan::none());
        }
    }
    let mut heal_sweeps = 0;
    while heal_sweeps < MAX_HEAL_SWEEPS {
        heal_sweeps += 1;
        for (r, row) in links.iter_mut().enumerate() {
            for (s, link) in row.iter_mut().enumerate() {
                let Some(link) = link.as_mut() else { continue };
                runtime
                    .pull_chaos(NodeId::from_index(r), NodeId::from_index(s), link, &policy)
                    .expect("healed pull must succeed");
            }
        }
        if runtime.converged(n_nodes) {
            break;
        }
    }

    assert!(runtime.converged(n_nodes), "soak did not converge after {MAX_HEAL_SWEEPS} sweeps");
    for (item, want) in expected.iter().enumerate() {
        for node in 0..n_nodes {
            let got = runtime.value(NodeId::from_index(node), ItemId(item as u32));
            assert_eq!(&got, want, "node {node} disagrees on item {item} after convergence");
        }
    }
    runtime.check_invariants(n_nodes);

    SoakResult { costs: runtime.costs(n_nodes), stats: sum_stats(&links), heal_sweeps, double_oobs }
}

// --- the restart-from-disk soak ---------------------------------------------

/// The slice of the durable runtimes the restart soak drives: the regular
/// soak operations plus kill/restart.
trait RestartRuntime {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>);
    fn pull(&mut self, recipient: NodeId, source: NodeId) -> epidb_common::Result<PullOutcome>;
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId);
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8>;
    fn converged(&self, n_nodes: usize) -> bool;
    fn costs(&self, n_nodes: usize) -> Costs;
    fn check_invariants(&self, n_nodes: usize);
    fn crash(&mut self, node: NodeId);
    fn revive(&mut self, node: NodeId);
}

impl RestartRuntime for Threaded {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        SoakRuntime::update(self, node, item, value);
    }
    fn pull(&mut self, recipient: NodeId, source: NodeId) -> epidb_common::Result<PullOutcome> {
        self.0.pull_delta_now(recipient, source)
    }
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        SoakRuntime::oob(self, recipient, source, item);
    }
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        SoakRuntime::value(self, node, item)
    }
    fn converged(&self, n_nodes: usize) -> bool {
        SoakRuntime::converged(self, n_nodes)
    }
    fn costs(&self, n_nodes: usize) -> Costs {
        SoakRuntime::costs(self, n_nodes)
    }
    fn check_invariants(&self, n_nodes: usize) {
        SoakRuntime::check_invariants(self, n_nodes);
    }
    fn crash(&mut self, node: NodeId) {
        self.0.crash(node);
    }
    fn revive(&mut self, node: NodeId) {
        self.0.revive(node);
    }
}

impl RestartRuntime for Tcp {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        SoakRuntime::update(self, node, item, value);
    }
    fn pull(&mut self, recipient: NodeId, source: NodeId) -> epidb_common::Result<PullOutcome> {
        self.0.pull_delta_now(recipient, source)
    }
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        SoakRuntime::oob(self, recipient, source, item);
    }
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        SoakRuntime::value(self, node, item)
    }
    fn converged(&self, n_nodes: usize) -> bool {
        SoakRuntime::converged(self, n_nodes)
    }
    fn costs(&self, n_nodes: usize) -> Costs {
        SoakRuntime::costs(self, n_nodes)
    }
    fn check_invariants(&self, n_nodes: usize) {
        SoakRuntime::check_invariants(self, n_nodes);
    }
    fn crash(&mut self, node: NodeId) {
        self.0.crash(node);
    }
    fn revive(&mut self, node: NodeId) {
        self.0.revive(node);
    }
}

struct RestartResult {
    costs: Costs,
    crashes: u64,
    revivals: u64,
    heal_sweeps: usize,
}

/// Run one restart soak: randomized single-writer updates, pulls and OOB
/// fetches among alive nodes, with a seeded kill/restart schedule on top.
/// Crashing really drops a node's in-memory replica; reviving recovers it
/// from its WAL + snapshot. Deterministic in `(seed, params)`.
fn run_restart_soak(
    runtime: &mut dyn RestartRuntime,
    seed: u64,
    params: SoakParams,
) -> RestartResult {
    let SoakParams { n_nodes, n_items, rounds, updates_per_round } = params;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C_0D1E);
    let mut alive = vec![true; n_nodes];
    let mut expected: Vec<Vec<u8>> = vec![Vec::new(); n_items];
    let mut crashes = 0u64;
    let mut revivals = 0u64;

    let pick = |rng: &mut StdRng, pool: &[usize]| -> usize { pool[rng.gen_range(0..pool.len())] };
    let alive_nodes =
        |alive: &[bool]| -> Vec<usize> { (0..n_nodes).filter(|&i| alive[i]).collect() };

    for _round in 0..rounds {
        // Maybe revive one crashed node (recovering it from disk mid-soak).
        let crashed: Vec<usize> = (0..n_nodes).filter(|&i| !alive[i]).collect();
        if !crashed.is_empty() && rng.gen_bool(0.4) {
            let node = pick(&mut rng, &crashed);
            runtime.revive(NodeId::from_index(node));
            alive[node] = true;
            revivals += 1;
        }
        // Maybe crash one alive node, keeping at least two up so
        // anti-entropy always has a pair to run on. The first crash is
        // unconditional: every seed exercises real kill/restart recovery.
        let up = alive_nodes(&alive);
        if up.len() > 2 && (crashes == 0 || rng.gen_bool(0.35)) {
            let node = pick(&mut rng, &up);
            runtime.crash(NodeId::from_index(node));
            alive[node] = false;
            crashes += 1;
        }

        // Single-writer updates at alive owners (item % n_nodes == owner),
        // so the expected final value of each item is its last write.
        let up = alive_nodes(&alive);
        for _ in 0..updates_per_round {
            let node = pick(&mut rng, &up);
            let slot = rng.gen_range(0..n_items.div_ceil(n_nodes));
            let item = node + slot * n_nodes;
            if item >= n_items {
                continue;
            }
            let len = if rng.gen_bool(0.25) { 200 } else { rng.gen_range(1..48usize) };
            let byte = rng.gen_range(0..=255u64) as u8;
            let value = vec![byte; len];
            expected[item] = value.clone();
            runtime.update(NodeId::from_index(node), ItemId(item as u32), value);
        }

        // Every alive node pulls from one random alive peer.
        for &r in &up {
            let others: Vec<usize> = up.iter().copied().filter(|&s| s != r).collect();
            let s = pick(&mut rng, &others);
            runtime
                .pull(NodeId::from_index(r), NodeId::from_index(s))
                .expect("pull between alive nodes must succeed");
        }

        // Occasionally fetch an item out-of-bound from its (alive) owner.
        if rng.gen_bool(0.4) {
            let node = pick(&mut rng, &up);
            let slot = rng.gen_range(0..n_items.div_ceil(n_nodes));
            let item = node + slot * n_nodes;
            let others: Vec<usize> = up.iter().copied().filter(|&s| s != node).collect();
            let recipient = pick(&mut rng, &others);
            if item < n_items {
                runtime.oob(
                    NodeId::from_index(recipient),
                    NodeId::from_index(node),
                    ItemId(item as u32),
                );
            }
        }
    }

    // Revive everyone (each recovering from its own disk), then sweep
    // full-mesh pulls until quiescent.
    for (node, up) in alive.iter_mut().enumerate() {
        if !*up {
            runtime.revive(NodeId::from_index(node));
            *up = true;
            revivals += 1;
        }
    }
    let mut heal_sweeps = 0;
    while heal_sweeps < MAX_HEAL_SWEEPS {
        heal_sweeps += 1;
        for r in 0..n_nodes {
            for s in 0..n_nodes {
                if s != r {
                    runtime
                        .pull(NodeId::from_index(r), NodeId::from_index(s))
                        .expect("post-recovery pull must succeed");
                }
            }
        }
        if runtime.converged(n_nodes) {
            break;
        }
    }

    assert!(
        runtime.converged(n_nodes),
        "restart soak did not converge after {MAX_HEAL_SWEEPS} sweeps"
    );
    for (item, want) in expected.iter().enumerate() {
        for node in 0..n_nodes {
            let got = runtime.value(NodeId::from_index(node), ItemId(item as u32));
            assert_eq!(
                &got, want,
                "node {node} disagrees on item {item} after crash-restart recovery"
            );
        }
    }
    runtime.check_invariants(n_nodes);

    RestartResult { costs: runtime.costs(n_nodes), crashes, revivals, heal_sweeps }
}

const RESTART_RUNTIMES: [&str; 2] = ["threaded", "tcp"];

/// Build one durable runtime journaling under `dir` (fresh per pass).
fn build_durable_runtime(kind: &str, params: SoakParams, dir: PathBuf) -> Box<dyn RestartRuntime> {
    let durability = Some(DurabilityConfig::new(dir));
    match kind {
        "threaded" => {
            let config = ClusterConfig {
                gossip_interval: Duration::from_secs(3600),
                delta_budget: DELTA_BUDGET,
                paranoid: true,
                durability,
                ..ClusterConfig::default()
            };
            Box::new(Threaded(ThreadedCluster::spawn(params.n_nodes, params.n_items, config)))
        }
        "tcp" => {
            let config = TcpConfig {
                gossip_interval: Duration::from_secs(3600),
                delta_budget: DELTA_BUDGET,
                paranoid: true,
                durability,
                ..TcpConfig::default()
            };
            Box::new(Tcp(TcpCluster::spawn(params.n_nodes, params.n_items, config).expect("spawn")))
        }
        other => panic!("unknown durable runtime {other}"),
    }
}

/// The `--restart-from-disk` mode: both durable runtimes, two same-seed
/// passes each (fresh directories per pass), asserting identical costs.
fn run_restart_mode(seed: u64, params: SoakParams) {
    for kind in RESTART_RUNTIMES {
        let mut first: Option<Costs> = None;
        for pass in 0..2 {
            let tmp = epidb_durable::testdir::TempDir::new(&format!("soak-{kind}-{pass}"));
            let mut runtime = build_durable_runtime(kind, params, tmp.path().clone());
            let result = run_restart_soak(runtime.as_mut(), seed, params);
            drop(runtime);

            if pass == 0 {
                println!(
                    "[{kind}+disk] crashes={} revivals={} heal_sweeps={}",
                    result.crashes, result.revivals, result.heal_sweeps
                );
                println!("[{kind}+disk] costs: {}", result.costs);
            }
            match &first {
                None => first = Some(result.costs),
                Some(c0) => {
                    assert_eq!(
                        c0, &result.costs,
                        "[{kind}+disk] same seed produced different costs"
                    );
                    println!("[{kind}+disk] replay: identical costs");
                }
            }
        }
    }
    println!("OK: durable runtimes converged to ground truth across crash-restart schedules");
}

// --- the sharded soak -------------------------------------------------------

/// Fixed sharded topology for the soak: two replica groups of two nodes
/// each, each group owning one disjoint shard. Nodes serve and gossip
/// only their own shard; the occasional cross-group fetch routes through
/// the shard map.
const SHARDED_NODES: usize = 4;

fn sharded_map(items_per_shard: usize) -> ShardMap {
    ShardMap::new(items_per_shard, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]])
}

/// The slice of each sharded runtime the soak drives: globally addressed
/// updates, per-shard chaos pulls among co-owners, out-of-bound fetches
/// (within-group adoptions and cross-group copies), and inspection.
trait ShardedSoakRuntime {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>);
    fn pull_shard_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome>;
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId);
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8>;
    fn node_costs(&self, node: NodeId) -> Costs;
    fn converged(&self, map: &ShardMap) -> bool;
    fn audits(&self) -> u64;
    fn check_invariants(&self);
}

/// Per-shard convergence over a probe: all owners of every shard hold
/// equal shard DBVVs with no auxiliary state.
fn sharded_converged(
    map: &ShardMap,
    probe: impl Fn(NodeId, ShardId) -> Option<(epidb_vv::DbVersionVector, usize)>,
) -> bool {
    ShardId::all(map.n_shards()).all(|shard| {
        let states: Vec<_> = map.owners(shard).iter().filter_map(|&n| probe(n, shard)).collect();
        match states.split_first() {
            None => true,
            Some(((reference, aux0), rest)) => {
                *aux0 == 0
                    && rest.iter().all(|(vv, aux)| {
                        *aux == 0 && vv.compare(reference) == epidb_vv::VvOrd::Equal
                    })
            }
        }
    })
}

struct ShardedInProc(ShardedSimCluster);

impl ShardedSoakRuntime for ShardedInProc {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        self.0.update(node, item, UpdateOp::set(value)).expect("update at shard owner");
    }
    fn pull_shard_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome> {
        self.0.pull_shard_chaos(recipient, source, shard, link, policy)
    }
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        self.0.oob(recipient, source, item).expect("oob");
    }
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.0.read(node, item).expect("read at shard owner")
    }
    fn node_costs(&self, node: NodeId) -> Costs {
        self.0.node_costs(node)
    }
    fn converged(&self, _map: &ShardMap) -> bool {
        self.0.converged()
    }
    fn audits(&self) -> u64 {
        self.0.paranoid_audits_total()
    }
    fn check_invariants(&self) {
        self.0.assert_invariants();
    }
}

struct ShardedThreaded(ShardedThreadedCluster);

impl ShardedSoakRuntime for ShardedThreaded {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        self.0.update(node, item, UpdateOp::set(value)).expect("update at shard owner");
    }
    fn pull_shard_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome> {
        self.0.pull_shard_now_chaos(recipient, source, shard, link, policy)
    }
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        self.0.oob_fetch(recipient, source, item).expect("oob");
    }
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.0.read(node, item).expect("read at shard owner")
    }
    fn node_costs(&self, node: NodeId) -> Costs {
        self.0.node_costs(node)
    }
    fn converged(&self, map: &ShardMap) -> bool {
        sharded_converged(map, |n, s| {
            self.0.with_node(n, |node| {
                node.shard_state(s).map(|r| (r.dbvv().clone(), r.aux_item_count()))
            })
        })
    }
    fn audits(&self) -> u64 {
        (0..SHARDED_NODES)
            .map(|i| self.0.with_node(NodeId::from_index(i), ShardedNode::audits_run))
            .sum()
    }
    fn check_invariants(&self) {
        for i in 0..SHARDED_NODES {
            self.0
                .with_node(NodeId::from_index(i), check_sharded_node)
                .unwrap_or_else(|e| panic!("invariant violated at node {i}: {e}"));
        }
    }
}

struct ShardedTcp(ShardedTcpCluster);

impl ShardedSoakRuntime for ShardedTcp {
    fn update(&mut self, node: NodeId, item: ItemId, value: Vec<u8>) {
        self.0.update(node, item, UpdateOp::set(value)).expect("update at shard owner");
    }
    fn pull_shard_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> epidb_common::Result<PullOutcome> {
        self.0.pull_shard_now_chaos(recipient, source, shard, link, policy)
    }
    fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) {
        self.0.oob_fetch(recipient, source, item).expect("oob");
    }
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.0.read(node, item).expect("read at shard owner")
    }
    fn node_costs(&self, node: NodeId) -> Costs {
        self.0.node_costs(node)
    }
    fn converged(&self, map: &ShardMap) -> bool {
        sharded_converged(map, |n, s| {
            self.0.with_node(n, |node| {
                node.shard_state(s).map(|r| (r.dbvv().clone(), r.aux_item_count()))
            })
        })
    }
    fn audits(&self) -> u64 {
        (0..SHARDED_NODES)
            .map(|i| self.0.with_node(NodeId::from_index(i), ShardedNode::audits_run))
            .sum()
    }
    fn check_invariants(&self) {
        for i in 0..SHARDED_NODES {
            self.0
                .with_node(NodeId::from_index(i), check_sharded_node)
                .unwrap_or_else(|e| panic!("invariant violated at node {i}: {e}"));
        }
    }
}

fn check_sharded_node(node: &ShardedNode) -> Result<(), String> {
    if node.conflicts_declared() == 0 {
        node.check_invariants_clean()
    } else {
        node.check_invariants()
    }
}

struct ShardedSoakResult {
    node_costs: Vec<Costs>,
    stats: ChaosStats,
    heal_sweeps: usize,
    double_oobs: u64,
}

/// Run one sharded soak: single-writer updates across both groups,
/// per-shard chaos pulls among co-owners, within-group duplicate OOB
/// fetches and cross-group copies, then heal and converge per shard.
/// Deterministic in `(seed, plan, params)`.
fn run_sharded_soak(
    runtime: &mut dyn ShardedSoakRuntime,
    map: &ShardMap,
    seed: u64,
    plan: &FaultPlan,
    params: SoakParams,
) -> ShardedSoakResult {
    let SoakParams { n_items, rounds, updates_per_round, .. } = params;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AA2_D50A);
    let policy = retry_policy();

    // One persistent chaos link per directed co-owner pair per shard —
    // gossip only ever flows within a replica group.
    let mut links: Vec<(NodeId, NodeId, ShardId, ChaosLink)> = Vec::new();
    for shard in ShardId::all(map.n_shards()) {
        let owners = map.owners(shard).to_vec();
        for &r in &owners {
            for &s in &owners {
                if r != s {
                    let link_seed = seed.wrapping_add(
                        ((r.index() * SHARDED_NODES + s.index()) as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    links.push((r, s, shard, ChaosLink::new(link_seed, plan.clone())));
                }
            }
        }
    }

    // Single writer per item: the owners of its shard take turns by local
    // index, so schedules are conflict-free and the expected final value
    // is the last write.
    let writer_of = |item: usize| -> NodeId {
        let id = ItemId(item as u32);
        let owners = map.owners(map.shard_of(id).expect("item in universe"));
        owners[map.local_item(id).index() % owners.len()]
    };
    let mut expected: Vec<Vec<u8>> = vec![Vec::new(); n_items];
    let mut double_oobs = 0u64;

    for _round in 0..rounds {
        for _ in 0..updates_per_round {
            let item = rng.gen_range(0..n_items);
            let len = if rng.gen_bool(0.25) { 200 } else { rng.gen_range(1..48usize) };
            let byte = rng.gen_range(0..=255u64) as u8;
            let value = vec![byte; len];
            expected[item] = value.clone();
            runtime.update(writer_of(item), ItemId(item as u32), value);
        }

        // Each co-owner pair pulls its shard through its chaos link.
        for (r, s, shard, link) in &mut links {
            let _ = runtime.pull_shard_chaos(*r, *s, *shard, link, &policy);
        }

        // Occasionally fetch a hot item out-of-bound within its group —
        // twice, so the second fetch must register as a redundant
        // delivery — and occasionally copy one across groups.
        if rng.gen_bool(0.5) {
            let item = rng.gen_range(0..n_items);
            let source = writer_of(item);
            let owners = map.owners(map.shard_of(ItemId(item as u32)).unwrap());
            let recipient = *owners.iter().find(|&&n| n != source).expect("two owners per shard");
            runtime.oob(recipient, source, ItemId(item as u32));
            runtime.oob(recipient, source, ItemId(item as u32));
            double_oobs += 1;
        }
        if rng.gen_bool(0.25) {
            let item = rng.gen_range(0..n_items);
            let source = writer_of(item);
            // A node from the *other* group: cross-group, via the map.
            let stranger = NodeId::from_index((source.index() + 2) % SHARDED_NODES);
            runtime.oob(stranger, source, ItemId(item as u32));
        }
    }

    // Heal every link, then sweep per-shard co-owner pulls until every
    // shard has converged across its group.
    for (_, _, _, link) in &mut links {
        link.set_plan(FaultPlan::none());
    }
    let mut heal_sweeps = 0;
    while heal_sweeps < MAX_HEAL_SWEEPS {
        heal_sweeps += 1;
        for (r, s, shard, link) in &mut links {
            runtime
                .pull_shard_chaos(*r, *s, *shard, link, &policy)
                .expect("healed pull must succeed");
        }
        if runtime.converged(map) {
            break;
        }
    }

    assert!(runtime.converged(map), "sharded soak did not converge after {MAX_HEAL_SWEEPS} sweeps");
    for (item, want) in expected.iter().enumerate() {
        let shard = map.shard_of(ItemId(item as u32)).unwrap();
        for &owner in map.owners(shard) {
            let got = runtime.value(owner, ItemId(item as u32));
            assert_eq!(
                &got, want,
                "owner {owner} disagrees on item {item} after per-shard convergence"
            );
        }
    }
    runtime.check_invariants();
    assert!(runtime.audits() > 0, "paranoid audits must have run");

    let mut stats = ChaosStats::default();
    for (_, _, _, link) in &links {
        let s = link.stats;
        stats.exchanges += s.exchanges;
        stats.lost_requests += s.lost_requests;
        stats.lost_responses += s.lost_responses;
        stats.duplicated += s.duplicated;
        stats.reordered += s.reordered;
        stats.redelivered += s.redelivered;
        stats.corrupted += s.corrupted;
        stats.resets += s.resets;
        stats.partitioned += s.partitioned;
        stats.delivered += s.delivered;
    }
    let node_costs =
        (0..SHARDED_NODES).map(|i| runtime.node_costs(NodeId::from_index(i))).collect();
    ShardedSoakResult { node_costs, stats, heal_sweeps, double_oobs }
}

fn build_sharded_runtime(kind: &str, map: &ShardMap) -> Box<dyn ShardedSoakRuntime> {
    match kind {
        "inproc" => {
            let mut c = ShardedSimCluster::new(map.clone(), SHARDED_NODES);
            c.set_paranoid(true);
            Box::new(ShardedInProc(c))
        }
        "threaded" => {
            let config = ShardedConfig {
                gossip_interval: Duration::from_secs(3600),
                paranoid: true,
                ..ShardedConfig::default()
            };
            Box::new(ShardedThreaded(ShardedThreadedCluster::spawn(
                map.clone(),
                SHARDED_NODES,
                config,
            )))
        }
        "tcp" => {
            let config = ShardedConfig {
                gossip_interval: Duration::from_secs(3600),
                paranoid: true,
                ..ShardedConfig::default()
            };
            Box::new(ShardedTcp(
                ShardedTcpCluster::spawn(map.clone(), SHARDED_NODES, config).expect("spawn"),
            ))
        }
        other => panic!("unknown sharded runtime {other}"),
    }
}

/// The `--sharded` mode: all three sharded runtimes, two same-seed passes
/// each, asserting per-node cost/fault determinism per runtime and
/// byte-identical per-node costs *across* runtimes.
fn run_sharded_mode(seed: u64, plan: &FaultPlan, params: SoakParams) {
    let map = sharded_map(params.n_items.div_ceil(2));
    let params = SoakParams { n_nodes: SHARDED_NODES, n_items: map.n_items(), ..params };
    let mut reference: Option<Vec<Costs>> = None;

    for kind in RUNTIMES {
        let mut first: Option<(Vec<Costs>, ChaosStats)> = None;
        for pass in 0..2 {
            let mut runtime = build_sharded_runtime(kind, &map);
            let result = run_sharded_soak(runtime.as_mut(), &map, seed, plan, params);
            drop(runtime);

            let s = result.stats;
            if pass == 0 {
                println!(
                    "[{kind}+sharded] exchanges={} delivered={} faults={} heal_sweeps={}",
                    s.exchanges,
                    s.delivered,
                    s.faults(),
                    result.heal_sweeps
                );
                for (i, c) in result.node_costs.iter().enumerate() {
                    println!("[{kind}+sharded] node {i} costs: {c}");
                }
            }

            let total = result.node_costs.iter().fold(Costs::ZERO, |a, b| a + *b);
            assert_eq!(
                total.corrupt_frames_dropped, s.corrupted,
                "[{kind}+sharded] corrupt frame accounting mismatch"
            );
            if s.faults() > s.duplicated {
                assert!(
                    total.retries > 0,
                    "[{kind}+sharded] faults occurred but no retries were counted"
                );
            }
            assert!(
                total.redundant_deliveries >= result.double_oobs,
                "[{kind}+sharded] duplicate OOB fetches must count as redundant deliveries"
            );

            match &first {
                None => first = Some((result.node_costs, s)),
                Some((c0, s0)) => {
                    assert_eq!(
                        c0, &result.node_costs,
                        "[{kind}+sharded] same seed produced different per-node costs"
                    );
                    assert_eq!(
                        s0, &s,
                        "[{kind}+sharded] same seed produced different fault sequence"
                    );
                    println!("[{kind}+sharded] replay: identical per-node costs and faults");
                }
            }
        }

        // Partial replication parity: every runtime charges every node
        // byte-identically for the same sharded schedule.
        let (costs, _) = first.expect("two passes ran");
        match &reference {
            None => reference = Some(costs),
            Some(r) => {
                assert_eq!(
                    r, &costs,
                    "[{kind}+sharded] per-node costs diverge from the in-process runtime"
                );
                println!("[{kind}+sharded] parity: per-node costs identical across runtimes");
            }
        }
    }
    println!("OK: sharded runtimes converged per shard under chaos; per-node parity held");
}

// --- runtime construction ---------------------------------------------------

const RUNTIMES: [&str; 3] = ["inproc", "threaded", "tcp"];

fn build_runtime(kind: &str, params: SoakParams) -> Box<dyn SoakRuntime> {
    match kind {
        "inproc" => {
            let mut c = EpidbCluster::new(params.n_nodes, params.n_items);
            c.enable_delta(DELTA_BUDGET);
            c.set_paranoid(true);
            Box::new(InProc(c))
        }
        "threaded" => {
            let config = ClusterConfig {
                // Gossip stays out of the way: the soak drives every
                // exchange itself so runs are schedule-deterministic.
                gossip_interval: Duration::from_secs(3600),
                delta_budget: DELTA_BUDGET,
                paranoid: true,
                ..ClusterConfig::default()
            };
            Box::new(Threaded(ThreadedCluster::spawn(params.n_nodes, params.n_items, config)))
        }
        "tcp" => {
            let config = TcpConfig {
                gossip_interval: Duration::from_secs(3600),
                delta_budget: DELTA_BUDGET,
                paranoid: true,
                ..TcpConfig::default()
            };
            Box::new(Tcp(TcpCluster::spawn(params.n_nodes, params.n_items, config).expect("spawn")))
        }
        "async" => {
            let config = AsyncTcpConfig {
                base: TcpConfig {
                    gossip_interval: Duration::from_secs(3600),
                    delta_budget: DELTA_BUDGET,
                    paranoid: true,
                    ..TcpConfig::default()
                },
                worker_threads: 2,
            };
            Box::new(AsyncTcp(
                AsyncTcpCluster::spawn(params.n_nodes, params.n_items, config).expect("spawn"),
            ))
        }
        other => panic!("unknown runtime {other}"),
    }
}

// --- main -------------------------------------------------------------------

fn main() {
    let mut smoke = false;
    let mut restart_from_disk = false;
    let mut sharded = false;
    let mut async_only = false;
    let mut seed: Option<u64> = None;
    let mut rounds: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--restart-from-disk" => restart_from_disk = true,
            "--sharded" => sharded = true,
            "--async" => async_only = true,
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                seed = Some(v.parse().expect("--seed takes a u64"));
            }
            "--rounds" => {
                let v = args.next().expect("--rounds needs a value");
                rounds = Some(v.parse().expect("--rounds takes a usize"));
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: chaos_soak [--smoke] [--seed N] [--rounds N] [--restart-from-disk] \
                     [--sharded] [--async]"
                );
                std::process::exit(2);
            }
        }
    }

    let seed = seed.unwrap_or_else(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xC0FFEE)
    });
    let mut params = if smoke { SMOKE } else { FULL };
    if let Some(r) = rounds {
        params.rounds = r;
    }

    if restart_from_disk {
        println!("chaos_soak --restart-from-disk: seed={seed} (replay with --seed {seed})");
        println!(
            "params: nodes={} items={} rounds={} updates/round={}{}",
            params.n_nodes,
            params.n_items,
            params.rounds,
            params.updates_per_round,
            if smoke { " (smoke)" } else { "" }
        );
        run_restart_mode(seed, params);
        return;
    }

    let plan = derive_plan(&mut StdRng::seed_from_u64(seed));
    if sharded {
        println!("chaos_soak --sharded: seed={seed} (replay with --seed {seed})");
        println!(
            "params: 2 groups x 2 nodes, shards=2 items/shard={} rounds={} updates/round={}{}",
            params.n_items.div_ceil(2),
            params.rounds,
            params.updates_per_round,
            if smoke { " (smoke)" } else { "" }
        );
        run_sharded_mode(seed, &plan, params);
        return;
    }
    let runtimes: &[&str] = if async_only { &["async"] } else { &RUNTIMES };
    let label = if async_only { "chaos_soak --async" } else { "chaos_soak" };
    println!("{label}: seed={seed} (replay with --seed {seed})");
    println!(
        "plan: loss={:.2}/{:.2} dup={:.2} reorder={:.2} corrupt={:.2} reset={:.2} partitions={}",
        plan.request_loss,
        plan.response_loss,
        plan.duplication,
        plan.reorder,
        plan.corruption,
        plan.reset,
        plan.partitions.len()
    );
    println!(
        "params: nodes={} items={} rounds={} updates/round={}{}",
        params.n_nodes,
        params.n_items,
        params.rounds,
        params.updates_per_round,
        if smoke { " (smoke)" } else { "" }
    );

    for &kind in runtimes {
        // Two identical runs: the soak must be a pure function of the seed.
        let mut first: Option<(Costs, ChaosStats)> = None;
        for pass in 0..2 {
            let mut runtime = build_runtime(kind, params);
            let result = run_soak(runtime.as_mut(), seed, &plan, params);
            drop(runtime);

            let s = result.stats;
            let c = result.costs;
            if pass == 0 {
                println!(
                    "[{kind}] exchanges={} delivered={} faults={} (lost={}/{} dup={} reorder={} \
                     corrupt={} reset={} partitioned={}) heal_sweeps={}",
                    s.exchanges,
                    s.delivered,
                    s.faults(),
                    s.lost_requests,
                    s.lost_responses,
                    s.duplicated,
                    s.reordered,
                    s.corrupted,
                    s.resets,
                    s.partitioned,
                    result.heal_sweeps
                );
                println!("[{kind}] costs: {c}");
            }

            // Accounting: every injected corruption was dropped and
            // counted at a replica; errors forced retries; duplicate OOB
            // fetches registered as redundant deliveries.
            assert_eq!(
                c.corrupt_frames_dropped, s.corrupted,
                "[{kind}] corrupt frame accounting mismatch"
            );
            if s.faults() > s.duplicated {
                assert!(c.retries > 0, "[{kind}] faults occurred but no retries were counted");
            }
            assert!(
                c.redundant_deliveries >= result.double_oobs,
                "[{kind}] duplicate OOB fetches must count as redundant deliveries"
            );

            match &first {
                None => first = Some((c, s)),
                Some((c0, s0)) => {
                    assert_eq!(c0, &c, "[{kind}] same seed produced different costs");
                    assert_eq!(s0, &s, "[{kind}] same seed produced different fault sequence");
                    println!("[{kind}] replay: identical costs and fault sequence");
                }
            }
        }
    }

    println!("OK: all runtimes converged under chaos; accounting and replay checks passed");
}
