//! `mc` — the exhaustive protocol model checker CLI.
//!
//! Runs [`epidb_mc::explore`] over the built-in scenarios: every
//! interleaving of action firings, message deliveries/losses, node
//! crashes, and revivals up to the per-scenario depth bound, checking the
//! six protocol invariants at every state and the paper's §2.1
//! eventual-consistency statement at every quiescent state. Finishes with
//! the seeded-mutant self-test: a deliberately broken replica must be
//! caught with a minimized, replayable counterexample.
//!
//! Exit status is non-zero if any clean scenario yields a counterexample
//! or the self-test fails to catch the mutant, so the binary doubles as a
//! CI gate (`ci.sh` runs `mc --smoke`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p epidb-bench --bin mc -- \
//!     [--smoke] [--dfs] [--scenario NAME] [--depth N] [--states N]
//! ```
//!
//! `--smoke` uses the CI-sized per-scenario limits; the default is the
//! thorough tier (a few extra plies everywhere). `--depth`/`--states`
//! override both. `--scenario` restricts the run to one scenario by name
//! (including `seeded-mutant`).

use std::time::Instant;

use epidb_mc::{explore, Scenario, Strategy};

fn usage() -> ! {
    eprintln!(
        "usage: mc [--smoke] [--dfs] [--scenario NAME] [--depth N] [--states N]\n\
         scenarios: two-node-full three-node-relay two-node-lww-conflict \
         two-node-report-conflict sharded-two-group seeded-mutant"
    );
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut strategy = Strategy::Bfs;
    let mut only: Option<String> = None;
    let mut depth_override: Option<usize> = None;
    let mut states_override: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--dfs" => strategy = Strategy::Dfs,
            "--scenario" => only = Some(args.next().unwrap_or_else(|| usage())),
            "--depth" => {
                depth_override =
                    Some(args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--states" => {
                states_override =
                    Some(args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }

    let tier = if smoke { "smoke" } else { "thorough" };
    println!("== epidb model checker ({tier}, {strategy}) ==");

    let mut scenarios = Scenario::all_clean();
    scenarios.push(Scenario::seeded_mutant());
    if let Some(name) = &only {
        scenarios.retain(|s| s.name == name.as_str());
        if scenarios.is_empty() {
            eprintln!("unknown scenario '{name}'");
            usage();
        }
    }

    let mut failed = false;
    for sc in scenarios {
        let mut limits = if smoke { sc.smoke_limits() } else { sc.thorough_limits() };
        if let Some(d) = depth_override {
            limits.max_depth = d;
        }
        if let Some(s) = states_override {
            limits.max_states = s;
        }

        let start = Instant::now();
        let report = match explore(&sc, strategy, &limits) {
            Ok(r) => r,
            Err(e) => {
                println!("  {:<26} ERROR: {e}", sc.name);
                failed = true;
                continue;
            }
        };
        let elapsed = start.elapsed();
        let expect_mutant = sc.mutant.is_some();

        match (&report.counterexample, expect_mutant) {
            (None, false) => {
                println!(
                    "  {:<26} clean   depth<={:<2} {}  ({:.2?})",
                    sc.name, limits.max_depth, report.stats, elapsed
                );
            }
            (Some(cx), true) => {
                println!(
                    "  {:<26} caught  check '{}' in {} events  {}  ({:.2?})",
                    sc.name,
                    cx.check,
                    cx.events.len(),
                    report.stats,
                    elapsed
                );
                println!("{}", indent(&cx.rendered));
            }
            (Some(cx), false) => {
                println!("  {:<26} FAILED: counterexample found  ({elapsed:.2?})", sc.name);
                println!("{}", indent(&cx.rendered));
                failed = true;
            }
            (None, true) => {
                println!(
                    "  {:<26} FAILED: seeded mutant NOT caught  {}  ({:.2?})",
                    sc.name, report.stats, elapsed
                );
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("model checker: all scenarios as expected");
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("      {l}")).collect::<Vec<_>>().join("\n")
}
