//! The experiment harness: regenerates every table and figure recorded in
//! EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p epidb-bench --bin experiments              # full sweeps
//!   cargo run --release -p epidb-bench --bin experiments -- --quick   # small sweeps
//!   cargo run --release -p epidb-bench --bin experiments -- t1 f2     # a subset
//!   cargo run --release -p epidb-bench --bin experiments -- --paranoid # audited T7
//!
//! `--paranoid` runs the T7 correctness audits with per-step replica
//! invariant auditing on (every protocol step verified; a violation
//! panics with the protocol trace).

use epidb_sim::experiments;
use epidb_sim::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let paranoid = args.iter().any(|a| a == "--paranoid");
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with('-')).map(String::as_str).collect();

    let run = |id: &str| selected.is_empty() || selected.iter().any(|s| s.eq_ignore_ascii_case(id));

    println!("epidb experiment harness — reproduction of Rabinovich, Gehani & Kononov,");
    println!("\"Scalable Update Propagation in Epidemic Replicated Databases\" (EDBT 1996)");
    println!("mode: {}\n", if quick { "quick" } else { "full" });

    let mut tables: Vec<Table> = Vec::new();
    if run("t1") {
        tables.push(experiments::t1::run(quick));
    }
    if run("t2") {
        tables.push(experiments::t2::run(quick));
    }
    if run("t3") {
        tables.push(experiments::t3::run(quick));
    }
    if run("t4") {
        tables.push(experiments::t4::run(quick));
    }
    if run("t5") {
        tables.push(experiments::t5::run(quick));
    }
    if run("t6") {
        tables.push(experiments::t6::run(quick));
    }
    if run("t8") {
        tables.push(experiments::t8::run(quick));
    }
    if run("f2") {
        tables.push(experiments::f2::run(quick));
    }
    if run("f3") {
        tables.push(experiments::f3::run_rounds(quick));
        tables.push(experiments::f3::run_staleness(quick));
    }
    if run("f4") {
        tables.push(experiments::f4::run(quick));
    }
    if run("f5") {
        tables.push(experiments::f5::run(quick));
    }
    if run("f6") {
        tables.push(experiments::f6::run(quick));
    }
    if run("t7") || run("audit") {
        let report = epidb_sim::run_audit(epidb_sim::AuditConfig {
            rounds: if quick { 20 } else { 60 },
            paranoid,
            ..epidb_sim::AuditConfig::default()
        });
        println!("## T7: correctness audit (conflict-free run)");
        println!(
            "   updates={} pulls={} adoption_violations={} undetected_divergences={} converged_clean={} paranoid_audits={}",
            report.updates_applied,
            report.pulls,
            report.adoption_violations,
            report.undetected_divergences.len(),
            report.converged_clean,
            report.paranoid_audits
        );
        let report = epidb_sim::run_audit(epidb_sim::AuditConfig {
            conflict_prone: true,
            oob_per_round: 0,
            rounds: if quick { 15 } else { 40 },
            seed: 99,
            paranoid,
            ..epidb_sim::AuditConfig::default()
        });
        println!("## T7b: correctness audit (conflict-prone run)");
        println!(
            "   updates={} pulls={} conflicted_items={} adoption_violations={} undetected_divergences={} paranoid_audits={}\n",
            report.updates_applied,
            report.pulls,
            report.conflicted_items.len(),
            report.adoption_violations,
            report.undetected_divergences.len(),
            report.paranoid_audits
        );
    }

    for t in &tables {
        println!("{t}");
    }
}
