//! `perf_report` — the benchmark trajectory harness.
//!
//! Runs the core perf scenarios (codec framing, anti-entropy vs `m`, delta
//! gossip, large-value out-of-bound copy) in-process with deterministic
//! inputs and emits a machine-readable JSON report, so every perf PR has
//! comparable before/after numbers (`BENCH_PR<k>.json` at the repo root).
//!
//! Unlike the criterion suites (statistical, interactive), this runner is
//! a fixed-format trajectory point: small, scriptable, and diffable. A
//! counting global allocator reports allocation traffic per operation, so
//! zero-copy claims are checkable, not aspirational.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p epidb-bench --bin perf_report -- \
//!     [--smoke] [--assert-zero-copy] [--assert-small-path] \
//!     [--assert-sharded-gossip] [--assert-group-commit] \
//!     [--assert-cold-start] [--out PATH] [--baseline PATH]
//! ```
//!
//! * `--smoke` — tiny sizes and budgets (CI: validates the harness and the
//!   JSON schema without burning minutes).
//! * `--assert-zero-copy` — assert that the large-value ship scenarios
//!   allocate far less than they ship (the steady-state zero-copy
//!   guarantee); fails loudly if a copy sneaks back into the payload path.
//! * `--assert-small-path` — assert the small-message allocation gates:
//!   decoding a many-small-items frame is O(1) allocations regardless of
//!   item count, and a steady-state delta gossip round stays under a fixed
//!   allocation budget.
//! * `--assert-sharded-gossip` — assert the partial-replication scaling
//!   gate: a node's per-round gossip costs and allocations are a function
//!   of the shards it *owns*, byte-identical across 2-shard and 8-shard
//!   universes.
//! * `--assert-group-commit` — assert the group-commit durability gate: a
//!   64-writer batch workload on the async runtime must spend far less
//!   than one fsync per committed mutation (ratio ≤ 0.1).
//! * `--assert-cold-start` — assert the set-reconciliation gate: syncing a
//!   1000-item replica that is 5 items behind a log-compacted source must
//!   ship ≥ 10× less payload than the whole-database pull, with total
//!   traffic bounded by O(diff · log N) — the cold-start degradation rung
//!   must beat the O(database) bottom rung it shields.
//! * `--baseline PATH` — a previous report to embed and compute speedups
//!   against (default `BENCH_PR8.json` if present).
//! * `--out PATH` — where to write the report (default `BENCH_PR10.json`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use epidb_common::{Costs, ItemId, NodeId, ShardId};
use epidb_core::codec::{decode_response_shared, encode_response, encode_response_to, Writer};
use epidb_core::{
    oob_copy, pull, pull_delta, ConflictPolicy, Engine, LocalShardedTransport, ProtocolRequest,
    ProtocolResponse, PullOutcome, Replica, RetryPolicy, ShardMap, ShardTransport, ShardedNode,
    Transport,
};
use epidb_durable::testdir::TempDir;
use epidb_durable::DurabilityConfig;
use epidb_net::{AsyncTcpCluster, AsyncTcpConfig, TcpConfig, TcpTransport};
use epidb_store::UpdateOp;

// --- counting allocator -----------------------------------------------------

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (ALLOC_CALLS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

// --- measurement loop -------------------------------------------------------

#[derive(Clone, Debug)]
struct Measure {
    name: &'static str,
    iters: u64,
    ns_per_op: f64,
    /// Item-value payload bytes one operation ships (0 when not applicable).
    payload_bytes_per_op: u64,
    mb_per_s: f64,
    alloc_bytes_per_op: f64,
    allocs_per_op: f64,
}

/// Run `routine` over per-iteration state from `setup` until `target` time
/// is spent inside `routine` (setup time and drop time excluded from the
/// clock but not from the iteration count).
fn bench<S, R>(
    name: &'static str,
    target: Duration,
    payload_bytes_per_op: u64,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) -> Measure {
    // Warmup.
    for _ in 0..2 {
        black_box(routine(setup()));
    }
    let mut spent = Duration::ZERO;
    let mut iters = 0u64;
    let mut alloc_calls = 0u64;
    let mut alloc_bytes = 0u64;
    while spent < target && iters < 100_000 {
        let state = setup();
        let (c0, b0) = alloc_snapshot();
        let t0 = Instant::now();
        let out = routine(state);
        spent += t0.elapsed();
        let (c1, b1) = alloc_snapshot();
        black_box(out);
        alloc_calls += c1 - c0;
        alloc_bytes += b1 - b0;
        iters += 1;
    }
    let ns_per_op = spent.as_nanos() as f64 / iters as f64;
    let mb_per_s = if payload_bytes_per_op > 0 {
        (payload_bytes_per_op as f64 * iters as f64) / (spent.as_secs_f64() * 1e6)
    } else {
        0.0
    };
    Measure {
        name,
        iters,
        ns_per_op,
        payload_bytes_per_op,
        mb_per_s,
        alloc_bytes_per_op: alloc_bytes as f64 / iters as f64,
        allocs_per_op: alloc_calls as f64 / iters as f64,
    }
}

// --- scenario setup ---------------------------------------------------------

/// Source/destination pair where the source has `m` updated items of
/// `val_len` bytes each (deterministic contents).
fn build_pair(n_nodes: usize, n_items: usize, m: usize, val_len: usize) -> (Replica, Replica) {
    assert!(m <= n_items);
    let mut src = Replica::new(NodeId(0), n_nodes, n_items);
    let dst = Replica::new(NodeId(1), n_nodes, n_items);
    for i in 0..m {
        src.update(ItemId::from_index(i), UpdateOp::set(vec![(i % 251) as u8; val_len]))
            .expect("update");
    }
    (src, dst)
}

struct Sizes {
    target: Duration,
    codec_m: usize,
    codec_val: usize,
    large_val: usize,
    pull_m: usize,
    pull_val: usize,
    delta_m: usize,
    delta_ops: usize,
    delta_val: usize,
    c10k_conns: usize,
    c10k_threads: usize,
    c10k_workers: usize,
    c10k_val: usize,
    gc_writers: usize,
    gc_ops: usize,
    cold_items: usize,
    cold_diff: usize,
    cold_val: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            target: Duration::from_millis(300),
            codec_m: 1_000,
            codec_val: 64,
            large_val: 1 << 20,
            pull_m: 256,
            pull_val: 4 << 10,
            delta_m: 64,
            delta_ops: 4,
            delta_val: 512,
            c10k_conns: 1_024,
            c10k_threads: 16,
            c10k_workers: 8,
            c10k_val: 256,
            gc_writers: 64,
            gc_ops: 16,
            cold_items: 1_000,
            cold_diff: 5,
            cold_val: 256,
        }
    }

    fn smoke() -> Sizes {
        Sizes {
            target: Duration::from_millis(10),
            codec_m: 32,
            codec_val: 64,
            large_val: 1 << 20, // keep 1 MiB so --assert-zero-copy is meaningful
            pull_m: 16,
            pull_val: 1 << 10,
            delta_m: 8,
            delta_ops: 3,
            delta_val: 128,
            c10k_conns: 128,
            c10k_threads: 8,
            c10k_workers: 2,
            c10k_val: 64,
            gc_writers: 8,
            gc_ops: 4,
            cold_items: 64,
            cold_diff: 3,
            cold_val: 64,
        }
    }
}

// --- scenarios --------------------------------------------------------------

/// Produce the full wire frame for a pull response carrying `m` items and
/// deliver it to a sink — the ship path from engine response to socket
/// boundary.
fn scenario_codec_frame(
    name: &'static str,
    s: &Sizes,
    m: usize,
    val: usize,
    extra: usize,
) -> Measure {
    let (mut src, dst) = build_pair(4, m.max(1), m, val);
    let dbvv = dst.dbvv().clone();
    let resp = ProtocolResponse::Pull(src.prepare_propagation(&dbvv));
    let payload = resp.payload_bytes();
    let mut sink = std::io::sink();
    // The transport's steady state: one reusable writer per connection;
    // value segments go to the socket straight from the store's buffers.
    let mut w = Writer::new();
    bench(
        name,
        s.target,
        payload,
        || (),
        |()| {
            use std::io::Write as _;
            encode_response_to(&resp, &mut w);
            sink.write_all(&(w.len() as u32).to_le_bytes()).unwrap();
            for chunk in w.chunks() {
                sink.write_all(chunk).unwrap();
            }
            w.len() + extra
        },
    )
}

/// Decode the same frame back into a typed response (the receive path).
fn scenario_codec_decode(name: &'static str, s: &Sizes, m: usize, val: usize) -> Measure {
    let (mut src, dst) = build_pair(4, m.max(1), m, val);
    let dbvv = dst.dbvv().clone();
    let resp = ProtocolResponse::Pull(src.prepare_propagation(&dbvv));
    let payload = resp.payload_bytes();
    let encoded = Bytes::from(encode_response(&resp));
    bench(name, s.target, payload, || (), |()| decode_response_shared(&encoded).unwrap())
}

/// One full anti-entropy pull shipping `m` items of `val` bytes.
fn scenario_pull(name: &'static str, s: &Sizes, m: usize, val: usize) -> Measure {
    let (src, dst0) = build_pair(3, m, m, val);
    let payload = (m * val) as u64;
    let mut src = src;
    bench(
        name,
        s.target,
        payload,
        || dst0.clone(),
        |mut dst| {
            let out = pull(&mut dst, &mut src).unwrap();
            assert!(matches!(out, PullOutcome::Propagated(_)));
            dst
        },
    )
}

/// One steady-state delta gossip round over many small items: each round
/// patches every item with `ops` small `write_range` updates at the
/// source, then ships the op chains to a persistent, already-converged
/// destination — the sustained many-small-updates regime the small-message
/// fast path targets (no per-round replica clones, no whole-item ships).
fn scenario_delta(name: &'static str, s: &Sizes, m: usize, ops: usize, val: usize) -> Measure {
    // Steady-state gossip: a persistent pair of replicas exchanging rounds
    // of small write-range patches — the workload whose per-round
    // allocation the small-path gate bounds. The op cache runs with a
    // bounded budget so its rings reach capacity during warmup instead of
    // doubling forever, and the patch payloads are shared `Bytes`
    // (refcount clones), so a measured round charges only the propagation
    // machinery itself.
    let patch = 64.min(val.max(1));
    let mut src = Replica::new(NodeId(0), 3, m);
    src.enable_delta(256 << 10);
    let mut dst = Replica::new(NodeId(1), 3, m);
    dst.enable_delta(256 << 10);
    for i in 0..m {
        src.update(ItemId::from_index(i), UpdateOp::set(vec![7u8; val])).unwrap();
    }
    pull(&mut dst, &mut src).unwrap();
    let patches: Vec<Bytes> = (0..ops).map(|k| Bytes::from(vec![k as u8; patch])).collect();
    let mut one_round = || {
        for (k, p) in patches.iter().enumerate() {
            for i in 0..m {
                src.update(
                    ItemId::from_index(i),
                    UpdateOp::write_range((k * patch) % val.max(1), p.clone()),
                )
                .unwrap();
            }
        }
        let out = pull_delta(&mut dst, &mut src).unwrap();
        assert!(matches!(out, PullOutcome::Propagated(_)));
        out
    };
    // Warm until the op cache hits its byte budget (steady state).
    for _ in 0..64 {
        one_round();
    }
    let payload = (m * ops * patch) as u64;
    bench(name, s.target, payload, || (), |()| one_round())
}

/// A steady-state sharded gossip pair: the two owners of shard 0 in a
/// deployment of `n_shards` total shards, exchanging delta rounds through
/// the sharded dispatch path (shard-map routing + shard envelopes). The
/// measured pair owns ONE shard regardless of `n_shards`; partial
/// replication promises their gossip work is a function of what they own,
/// not of the universe size.
struct ShardedGossipPair {
    src: ShardedNode,
    dst: ShardedNode,
    m: usize,
    ops: usize,
    patch: Bytes,
    val: usize,
}

fn build_sharded_gossip(s: &Sizes, n_shards: usize) -> ShardedGossipPair {
    assert!(n_shards >= 2);
    let m = s.delta_m;
    // Shard 0 belongs to the measured pair; every other shard to a group
    // this pair is *not* in, so widening the universe adds only unowned
    // shards.
    let mut groups = vec![vec![NodeId(0), NodeId(1)]];
    groups.extend((1..n_shards).map(|_| vec![NodeId(2), NodeId(3)]));
    let map = ShardMap::new(m, groups);
    let mut src = ShardedNode::new(NodeId(0), 4, map.clone(), ConflictPolicy::Report);
    let mut dst = ShardedNode::new(NodeId(1), 4, map, ConflictPolicy::Report);
    src.enable_delta(256 << 10);
    dst.enable_delta(256 << 10);
    let val = s.delta_val.max(1);
    for i in 0..m {
        src.update(ItemId::from_index(i), UpdateOp::set(vec![7u8; val])).unwrap();
    }
    let patch = Bytes::from(vec![3u8; 64.min(val)]);
    let mut pair = ShardedGossipPair { src, dst, m, ops: s.delta_ops, patch, val };
    // Whole-pull once to converge, then warm the op caches to capacity.
    {
        let replica = pair.dst.shard_state_mut(ShardId(0)).unwrap();
        let mut local = LocalShardedTransport::new(&mut pair.src);
        let mut transport = ShardTransport::new(&mut local, ShardId(0));
        Engine::pull(replica, &mut transport).unwrap();
    }
    for _ in 0..64 {
        sharded_gossip_round(&mut pair);
    }
    pair
}

/// One steady-state round: patch every owned item at the source, then one
/// delta pull of shard 0 at the destination.
fn sharded_gossip_round(pair: &mut ShardedGossipPair) {
    let patch_len = pair.patch.len();
    for k in 0..pair.ops {
        for i in 0..pair.m {
            pair.src
                .update(
                    ItemId::from_index(i),
                    UpdateOp::write_range((k * patch_len) % pair.val, pair.patch.clone()),
                )
                .unwrap();
        }
    }
    let replica = pair.dst.shard_state_mut(ShardId(0)).unwrap();
    let mut local = LocalShardedTransport::new(&mut pair.src);
    let mut transport = ShardTransport::new(&mut local, ShardId(0));
    let out = Engine::pull_delta(replica, &mut transport).unwrap();
    assert!(matches!(out, PullOutcome::Propagated(_)));
}

fn scenario_sharded_gossip(name: &'static str, s: &Sizes, n_shards: usize) -> Measure {
    let mut pair = build_sharded_gossip(s, n_shards);
    let payload = (pair.m * pair.ops * pair.patch.len()) as u64;
    bench(name, s.target, payload, || (), |()| sharded_gossip_round(&mut pair))
}

/// The ownership-scaling gate behind `--assert-sharded-gossip`: the exact
/// per-node [`Costs`] of the same per-owned-shard schedule must be
/// byte-identical whether the universe holds 2 shards or 8 — per-node
/// gossip traffic is charged per *owned* shard, never per total item.
fn assert_sharded_ownership_scaling(s: &Sizes) {
    let mut narrow = build_sharded_gossip(s, 2);
    let mut wide = build_sharded_gossip(s, 8);
    for _ in 0..8 {
        sharded_gossip_round(&mut narrow);
        sharded_gossip_round(&mut wide);
    }
    for (who, a, b) in [
        ("source", narrow.src.costs(), wide.src.costs()),
        ("destination", narrow.dst.costs(), wide.dst.costs()),
    ] {
        assert!(a != Costs::ZERO && b != Costs::ZERO, "{who} gossip must have been charged");
        assert_eq!(
            a, b,
            "sharded-gossip scaling regression: the {who}'s costs changed with the number \
             of *unowned* shards (2-shard universe vs 8-shard universe)"
        );
    }
    // And unowned shards cost the other group's members nothing here:
    // neither measured node even instantiates them.
    assert_eq!(wide.src.owned_shards(), vec![ShardId(0)]);
    eprintln!("perf_report: sharded-gossip ownership-scaling assertions hold.");
}

/// One out-of-bound copy of a single large value to a fresh recipient.
fn scenario_oob_large(name: &'static str, s: &Sizes) -> Measure {
    let mut src = Replica::new(NodeId(0), 2, 4);
    src.update(ItemId(0), UpdateOp::set(vec![0x5A; s.large_val])).unwrap();
    bench(
        name,
        s.target,
        s.large_val as u64,
        || Replica::new(NodeId(1), 2, 4),
        |mut dst| {
            oob_copy(&mut dst, &mut src, ItemId(0)).unwrap();
            dst
        },
    )
}

/// Restore a replica from an in-memory snapshot frame holding one large
/// value — the crash-recovery load path. With `Reader::shared` aliasing,
/// the restored value is a sub-view of the frame, not a copy.
fn scenario_snapshot_restore(name: &'static str, s: &Sizes) -> Measure {
    let mut src = Replica::new(NodeId(0), 2, 4);
    src.update(ItemId(0), UpdateOp::set(vec![0xA5; s.large_val])).unwrap();
    let frame = Bytes::from(src.to_snapshot());
    bench(
        name,
        s.target,
        s.large_val as u64,
        || (),
        |()| Replica::from_snapshot_shared(&frame).unwrap(),
    )
}

/// A source whose log was compacted past the recipient's coverage, with
/// the recipient `diff` items behind — the cold-start shape that forces
/// the degradation ladder below tail-covered pulls (delta → recon →
/// whole-pull).
fn build_cold_pair(n_items: usize, diff: usize, val: usize) -> (Replica, Replica) {
    let mut src = Replica::new(NodeId(0), 2, n_items);
    let mut dst = Replica::new(NodeId(1), 2, n_items);
    for i in 0..n_items {
        src.update(ItemId::from_index(i), UpdateOp::set(vec![(i % 251) as u8; val])).unwrap();
    }
    pull(&mut dst, &mut src).expect("shared history pull");
    src.set_log_retention(1);
    for k in 0..diff {
        src.update(ItemId::from_index((k * 97) % n_items), UpdateOp::set(vec![0xC3; val]))
            .expect("post-compaction update");
    }
    (src, dst)
}

/// Cold-start sync of a slightly-behind replica: the source's compacted
/// log cannot cover the gap, so a plain pull degrades to the digest-tree
/// reconciliation and ships only the differing items.
fn scenario_cold_start_behind(name: &'static str, s: &Sizes) -> Measure {
    let (mut src, dst0) = build_cold_pair(s.cold_items, s.cold_diff, s.cold_val);
    let payload = (s.cold_diff * s.cold_val) as u64;
    bench(
        name,
        s.target,
        payload,
        || dst0.clone(),
        |mut dst| {
            let out = pull(&mut dst, &mut src).unwrap();
            assert!(matches!(out, PullOutcome::Propagated(_)));
            dst
        },
    )
}

/// Cold-start sync of an empty replica against the same compacted source:
/// the reconciliation driver skips the descent (everything differs) and
/// takes the O(database) whole-pull bottom rung outright.
fn scenario_cold_start_fresh(name: &'static str, s: &Sizes) -> Measure {
    let (mut src, _) = build_cold_pair(s.cold_items, s.cold_diff, s.cold_val);
    let payload = (s.cold_items * s.cold_val) as u64;
    bench(
        name,
        s.target,
        payload,
        || Replica::new(NodeId(1), 2, s.cold_items),
        |mut dst| {
            let out = pull(&mut dst, &mut src).unwrap();
            assert!(matches!(out, PullOutcome::Propagated(_)));
            dst
        },
    )
}

/// The cold-start gate behind `--assert-cold-start`, on fixed sizes
/// (independent of `--smoke`, so CI exercises the real tree depth): a
/// 1000-item replica 5 items behind a compacted source must reconcile
/// with ≥ 10× less payload than the whole-database pull, and its total
/// two-way traffic — digests, floors, items, and all — must stay within
/// an O(diff · log N) envelope. This is the scaling claim of the recon
/// rung: O(d · log N), not O(N).
fn assert_cold_start_reconciliation() {
    const N: usize = 1_000;
    const DIFF: usize = 5;
    const VAL: usize = 256;
    let (mut src, mut dst) = build_cold_pair(N, DIFF, VAL);
    // The bottom rung's price: the payload a whole-database pull ships.
    let whole_payload = {
        let mut twin = src.clone();
        ProtocolResponse::Full(twin.serve_full_pull().expect("serve full pull")).payload_bytes()
    };
    let src0 = src.costs();
    let dst0 = dst.costs();
    let out = pull(&mut dst, &mut src).expect("cold-start pull");
    assert!(matches!(out, PullOutcome::Propagated(_)), "the cold-start pull must reconcile");
    let responses = src.costs().bytes_sent - src0.bytes_sent;
    let requests = dst.costs().bytes_sent - dst0.bytes_sent;
    let control = (src.costs().control_bytes - src0.control_bytes)
        + (dst.costs().control_bytes - dst0.control_bytes);
    let total = responses + requests;
    let payload = total - control;
    assert!(
        payload * 10 <= whole_payload,
        "cold-start regression: reconciling a {DIFF}-item diff shipped {payload} payload \
         bytes, more than a tenth of the {whole_payload}-byte whole-database pull"
    );
    let log2n = (usize::BITS - (N - 1).leading_zeros()) as u64;
    let bound = 256 * DIFF as u64 * log2n + 2048;
    assert!(
        total <= bound,
        "cold-start regression: {total} total bytes for a {DIFF}-item diff over {N} items \
         exceeds the O(diff * log N) envelope of {bound} bytes — the descent stopped pruning"
    );
    for k in 0..DIFF {
        let x = ItemId::from_index((k * 97) % N);
        assert_eq!(dst.read(x).unwrap(), src.read(x).unwrap(), "diff item {x:?} reconciled");
    }
    eprintln!(
        "perf_report: cold-start assertions hold ({total} recon bytes, {payload} payload, \
         vs {whole_payload} whole-pull payload; envelope {bound})."
    );
}

/// One sweep of the C10K rig: every pre-opened connection completes one
/// pull exchange, driven by one client thread per chunk.
fn c10k_sweep(chunks: &mut [Vec<TcpTransport>], probe: &ProtocolRequest) {
    std::thread::scope(|scope| {
        for chunk in chunks.iter_mut() {
            scope.spawn(move || {
                for t in chunk.iter_mut() {
                    let resp = t.exchange(probe.clone()).expect("c10k exchange failed");
                    assert!(matches!(resp, ProtocolResponse::Pull(_)), "c10k: unexpected response");
                }
            });
        }
    });
}

/// The C10K scenario: `c10k_conns` concurrently-open pull clients against
/// an async 2-node cluster served by a fixed reactor pool (never more
/// than 8 threads). The measured op is one full sweep — every connection
/// completes a whole-payload pull exchange (the probe DBVV never
/// advances, so each response ships the full item) while all sockets stay
/// parked in the reactor between sweeps.
fn scenario_c10k(name: &'static str, s: &Sizes) -> Measure {
    let cluster = AsyncTcpCluster::spawn(
        2,
        4,
        AsyncTcpConfig {
            base: TcpConfig { gossip_interval: Duration::from_secs(3600), ..TcpConfig::default() },
            worker_threads: s.c10k_workers,
        },
    )
    .expect("spawn async cluster");
    assert!(cluster.worker_threads() <= 8, "serving threads must stay bounded");
    cluster.update(NodeId(0), ItemId(0), UpdateOp::set(vec![0x6B; s.c10k_val])).unwrap();
    let client = Replica::new(NodeId(1), 2, 4);
    let probe = ProtocolRequest::Pull { from: NodeId(1), dbvv: client.dbvv().clone() };
    let threads = s.c10k_threads.max(1);
    let mut chunks: Vec<Vec<TcpTransport>> = (0..threads).map(|_| Vec::new()).collect();
    for i in 0..s.c10k_conns {
        chunks[i % threads].push(cluster.transport_to(NodeId(0)));
    }
    // A settling sweep, then require every socket parked in the reactor:
    // the workload below runs against held-open connections, not a
    // connect/close churn.
    c10k_sweep(&mut chunks, &probe);
    RetryPolicy::default()
        .poll_until("parked c10k connections", Duration::from_secs(10), || {
            cluster.open_connections() >= s.c10k_conns
        })
        .expect("the reactor must keep every client connection open");
    let payload = (s.c10k_conns * s.c10k_val) as u64;
    let measure = bench(name, s.target, payload, || (), |()| c10k_sweep(&mut chunks, &probe));
    assert!(
        cluster.open_connections() >= s.c10k_conns,
        "c10k: connections were dropped during the sweeps ({} open)",
        cluster.open_connections()
    );
    drop(chunks);
    cluster.shutdown();
    measure
}

/// Group-commit durability under concurrent writers: `gc_writers` threads
/// each commit `gc_ops` updates to their own item on a durable async
/// node with per-batch fsync on; every update is acknowledged only after
/// the shared committer's fsync covers its record. The measured op is one
/// whole batch workload.
fn scenario_group_commit(name: &'static str, s: &Sizes) -> Measure {
    let tmp = TempDir::new("perf-group-commit");
    let mut durability = DurabilityConfig::new(tmp.path());
    durability.fsync = true;
    durability.checkpoint_every = u64::MAX;
    let cluster = AsyncTcpCluster::spawn(
        2,
        s.gc_writers.max(1),
        AsyncTcpConfig {
            base: TcpConfig {
                gossip_interval: Duration::from_secs(3600),
                durability: Some(durability),
                ..TcpConfig::default()
            },
            worker_threads: 2,
        },
    )
    .expect("spawn durable async cluster");
    const VAL: usize = 32;
    let payload = (s.gc_writers * s.gc_ops * VAL) as u64;
    let measure = bench(
        name,
        s.target,
        payload,
        || (),
        |()| {
            std::thread::scope(|scope| {
                for w in 0..s.gc_writers {
                    let cluster = &cluster;
                    scope.spawn(move || {
                        for k in 0..s.gc_ops {
                            cluster
                                .update(
                                    NodeId(0),
                                    ItemId::from_index(w),
                                    UpdateOp::set(vec![k as u8; VAL]),
                                )
                                .expect("durable update failed");
                        }
                    });
                }
            });
        },
    );
    let stats = cluster.group_commit_stats(NodeId(0)).expect("node 0 has a group WAL");
    assert!(stats.records > 0 && stats.fsyncs > 0, "the workload must have journaled");
    cluster.shutdown();
    measure
}

/// The durability gate behind `--assert-group-commit`: under a 64-writer
/// batch workload with per-batch fsync on, every acknowledged mutation is
/// journaled exactly once and the committer spends at most one fsync per
/// ten committed mutations — the group-commit win is `fsyncs / records`
/// ≪ 1, never one fsync per mutation.
fn assert_group_commit_batching() {
    const WRITERS: usize = 64;
    const OPS: usize = 16;
    let tmp = TempDir::new("perf-group-commit-gate");
    let mut durability = DurabilityConfig::new(tmp.path());
    durability.fsync = true;
    durability.checkpoint_every = u64::MAX;
    let cluster = AsyncTcpCluster::spawn(
        2,
        WRITERS,
        AsyncTcpConfig {
            base: TcpConfig {
                gossip_interval: Duration::from_secs(3600),
                durability: Some(durability),
                ..TcpConfig::default()
            },
            worker_threads: 2,
        },
    )
    .expect("spawn durable async cluster");
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let cluster = &cluster;
            scope.spawn(move || {
                for k in 0..OPS {
                    cluster
                        .update(NodeId(0), ItemId::from_index(w), UpdateOp::set(vec![k as u8; 24]))
                        .expect("durable update failed");
                }
            });
        }
    });
    let stats = cluster.group_commit_stats(NodeId(0)).expect("node 0 has a group WAL");
    cluster.shutdown();
    let total = (WRITERS * OPS) as u64;
    assert_eq!(
        stats.records, total,
        "group commit must journal every acknowledged mutation exactly once"
    );
    assert!(stats.fsyncs >= 1, "fsync-on workload must have fsynced");
    let ratio = stats.fsyncs as f64 / stats.records as f64;
    assert!(
        ratio <= 0.1,
        "group-commit regression: {} fsyncs for {} mutations (ratio {ratio:.3} > 0.1) — \
         the committer stopped coalescing concurrent writers into shared fsync batches",
        stats.fsyncs,
        stats.records,
    );
    eprintln!(
        "perf_report: group-commit assertions hold ({} records, {} batches, {} fsyncs, \
         {ratio:.3} fsyncs/mutation).",
        stats.records, stats.batches, stats.fsyncs,
    );
}

fn run_all(s: &Sizes) -> Vec<Measure> {
    vec![
        scenario_codec_frame("codec_frame_many_small", s, s.codec_m, s.codec_val, 0),
        scenario_codec_frame("codec_frame_large_value", s, 1, s.large_val, 0),
        scenario_codec_decode("codec_decode_many_small", s, s.codec_m, s.codec_val),
        scenario_codec_decode("codec_decode_large_value", s, 1, s.large_val),
        scenario_pull("pull_vs_m", s, s.pull_m, s.pull_val),
        scenario_pull("pull_large_value", s, 1, s.large_val),
        scenario_delta("delta_gossip", s, s.delta_m, s.delta_ops, s.delta_val),
        scenario_sharded_gossip("sharded_gossip_2shards", s, 2),
        scenario_sharded_gossip("sharded_gossip_8shards", s, 8),
        scenario_oob_large("oob_large_value", s),
        scenario_snapshot_restore("snapshot_restore_large_value", s),
        scenario_cold_start_behind("cold_start_behind", s),
        scenario_cold_start_fresh("cold_start_fresh", s),
        scenario_c10k("c10k_connections", s),
        scenario_group_commit("group_commit_fsync", s),
    ]
}

// --- report emission --------------------------------------------------------

fn scenarios_json(measures: &[Measure]) -> String {
    let mut out = String::from("{\n");
    for (i, m) in measures.iter().enumerate() {
        let comma = if i + 1 == measures.len() { "" } else { "," };
        writeln!(
            out,
            "    \"{}\": {{\"iters\": {}, \"ns_per_op\": {:.1}, \"payload_bytes_per_op\": {}, \
             \"mb_per_s\": {:.2}, \"alloc_bytes_per_op\": {:.1}, \"allocs_per_op\": {:.1}}}{comma}",
            m.name,
            m.iters,
            m.ns_per_op,
            m.payload_bytes_per_op,
            m.mb_per_s,
            m.alloc_bytes_per_op,
            m.allocs_per_op,
        )
        .unwrap();
    }
    out.push_str("  }");
    out
}

/// Pull `"<scenario>": {... "ns_per_op": <x> ...}` numbers out of a prior
/// report without a JSON dependency: the reports are machine-written in a
/// fixed shape, so a scan is reliable here (and only here).
fn extract_ns_per_op(report: &str, scenario: &str) -> Option<f64> {
    let key = format!("\"{scenario}\"");
    let at = report.find(&key)?;
    let rest = &report[at..];
    let field = rest.find("\"ns_per_op\":")?;
    let tail = rest[field + "\"ns_per_op\":".len()..].trim_start();
    let end = tail.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
    tail[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let opt = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::from)
    };
    let smoke = has("--smoke");
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_PR10.json".into());
    let baseline_path = opt("--baseline").unwrap_or_else(|| "BENCH_PR8.json".into());

    let sizes = if smoke { Sizes::smoke() } else { Sizes::full() };
    eprintln!("perf_report: running {} scenarios...", if smoke { "smoke" } else { "full" });
    let measures = run_all(&sizes);
    for m in &measures {
        eprintln!(
            "  {:<26} {:>10.0} ns/op {:>10.2} MB/s {:>12.0} alloc B/op ({} iters)",
            m.name, m.ns_per_op, m.mb_per_s, m.alloc_bytes_per_op, m.iters
        );
    }

    if has("--assert-zero-copy") {
        // The steady-state zero-copy guarantee: shipping a large value from
        // store to the socket boundary must not allocate (and so cannot
        // memcpy into fresh buffers) anywhere near the payload it ships.
        // The bound is generous (25% of one payload) to leave room for
        // control structures, yet any real per-byte copy of the value blows
        // straight through it.
        for name in [
            "codec_frame_large_value",
            "oob_large_value",
            "pull_large_value",
            "snapshot_restore_large_value",
        ] {
            let m = measures.iter().find(|m| m.name == name).expect("scenario exists");
            let bound = m.payload_bytes_per_op as f64 / 4.0;
            assert!(
                m.alloc_bytes_per_op < bound,
                "zero-copy regression in `{name}`: {:.0} alloc bytes/op >= {bound:.0} \
                 (payload {} bytes/op)",
                m.alloc_bytes_per_op,
                m.payload_bytes_per_op,
            );
        }
        eprintln!("perf_report: zero-copy allocation assertions hold.");
    }

    if has("--assert-small-path") {
        // The small-message fast-path gates: decoding a frame of many
        // small items must be O(1) allocations (scratch/inline decoding —
        // any per-item allocation multiplies by the item count and blows
        // the bound), and one steady-state delta gossip round over many
        // small updates must stay under a fixed allocation budget.
        let decode =
            measures.iter().find(|m| m.name == "codec_decode_many_small").expect("scenario");
        assert!(
            decode.allocs_per_op <= 10.0,
            "small-path regression in `codec_decode_many_small`: {:.1} allocs/op > 10 \
             (per-item allocation crept back into the decoders)",
            decode.allocs_per_op,
        );
        let gossip = measures.iter().find(|m| m.name == "delta_gossip").expect("scenario");
        assert!(
            gossip.alloc_bytes_per_op <= 65_536.0,
            "small-path regression in `delta_gossip`: {:.0} alloc bytes/round > 65536",
            gossip.alloc_bytes_per_op,
        );
        eprintln!("perf_report: small-path allocation assertions hold.");
    }

    if has("--assert-sharded-gossip") {
        // Partial replication: a pair owning one shard must do identical
        // gossip work whether the universe holds 2 shards or 8, and the
        // wide deployment must not allocate meaningfully more per round.
        assert_sharded_ownership_scaling(&sizes);
        let narrow =
            measures.iter().find(|m| m.name == "sharded_gossip_2shards").expect("scenario");
        let wide = measures.iter().find(|m| m.name == "sharded_gossip_8shards").expect("scenario");
        assert!(
            wide.allocs_per_op <= narrow.allocs_per_op * 1.5 + 16.0,
            "sharded-gossip scaling regression: {:.1} allocs/round with 8 shards vs {:.1} \
             with 2 — per-round allocation must track owned shards, not the universe",
            wide.allocs_per_op,
            narrow.allocs_per_op,
        );
    }

    if has("--assert-group-commit") {
        // Group-commit durability: the fsyncs-per-mutation ratio gate on
        // a fixed 64-writer workload (independent of --smoke scaling, so
        // CI exercises real batching pressure).
        assert_group_commit_batching();
    }

    if has("--assert-cold-start") {
        // Set reconciliation: the O(diff · log N) cold-start gate on the
        // fixed 1000-item, 5-behind workload.
        assert_cold_start_reconciliation();
    }

    let baseline = std::fs::read_to_string(&baseline_path).ok();
    let mut report = String::new();
    report.push_str("{\n");
    report.push_str("  \"schema\": \"epidb-perf-report/v1\",\n");
    report.push_str("  \"pr\": 10,\n");
    writeln!(report, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" }).unwrap();
    writeln!(report, "  \"scenarios\": {},", scenarios_json(&measures)).unwrap();
    match &baseline {
        Some(text) => {
            let mut speedups = String::from("{\n");
            let mut first = true;
            for m in &measures {
                if let Some(base_ns) = extract_ns_per_op(text, m.name) {
                    if !first {
                        speedups.push_str(",\n");
                    }
                    first = false;
                    write!(speedups, "    \"{}\": {:.2}", m.name, base_ns / m.ns_per_op).unwrap();
                }
            }
            speedups.push_str("\n  }");
            writeln!(report, "  \"speedup_vs_baseline\": {speedups},").unwrap();
            writeln!(report, "  \"baseline\": {}", text.trim_end()).unwrap();
        }
        None => {
            report.push_str("  \"speedup_vs_baseline\": null,\n");
            report.push_str("  \"baseline\": null\n");
        }
    }
    report.push_str("}\n");

    std::fs::write(&out_path, &report).expect("write report");

    // Self-validate the emitted schema (the CI smoke run relies on this).
    let written = std::fs::read_to_string(&out_path).expect("re-read report");
    assert!(written.contains("\"schema\": \"epidb-perf-report/v1\""));
    for m in &measures {
        let ns = extract_ns_per_op(&written, m.name)
            .unwrap_or_else(|| panic!("scenario `{}` missing from emitted report", m.name));
        assert!(ns > 0.0, "non-positive timing for `{}`", m.name);
    }
    eprintln!("perf_report: wrote {out_path} ({} scenarios, schema validated).", measures.len());
}
