//! Shared setup helpers for the Criterion benchmarks and the `experiments`
//! binary.

use epidb_common::{ItemId, NodeId};
use epidb_core::Replica;
use epidb_store::UpdateOp;

/// Build a source/destination replica pair where the source has applied
/// `m` updates to distinct items (the standard T1/T2 measurement setup).
pub fn prepared_pair(n_nodes: usize, n_items: usize, m: usize) -> (Replica, Replica) {
    assert!(m <= n_items);
    let mut src = Replica::new(NodeId(0), n_nodes, n_items);
    let dst = Replica::new(NodeId(1), n_nodes, n_items);
    for i in 0..m {
        src.update(ItemId::from_index(i), UpdateOp::set(vec![0xAB; 64])).expect("update");
    }
    (src, dst)
}

/// Build a pair that is already identical (dst pulled once), for the
/// constant-time detection benchmarks.
pub fn identical_pair(n_nodes: usize, n_items: usize, m: usize) -> (Replica, Replica) {
    let (mut src, mut dst) = prepared_pair(n_nodes, n_items, m);
    epidb_core::pull(&mut dst, &mut src).expect("pull");
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidb_core::PullOutcome;

    #[test]
    fn prepared_pair_transfers_m_items() {
        let (mut src, mut dst) = prepared_pair(2, 1000, 10);
        let out = epidb_core::pull(&mut dst, &mut src).unwrap();
        assert_eq!(out.copied().len(), 10);
    }

    #[test]
    fn identical_pair_is_up_to_date() {
        let (mut src, mut dst) = identical_pair(2, 1000, 10);
        assert!(matches!(epidb_core::pull(&mut dst, &mut src).unwrap(), PullOutcome::UpToDate));
    }
}
