//! Adapter driving the paper's protocol through the common
//! [`SyncProtocol`] interface, so every experiment runs the paper's
//! protocol and the baselines over identical workloads and schedules.

use epidb_baselines::{SyncProtocol, SyncReport};
use epidb_common::{Costs, Error, ItemId, NodeId, Result};
use epidb_core::{
    ChaosLink, ChaosTransport, ConflictPolicy, Engine, LocalTransport, OobOutcome, PullOutcome,
    Replica, RetryPolicy,
};
use epidb_store::UpdateOp;

/// A cluster of [`Replica`]s running the paper's protocol.
pub struct EpidbCluster {
    replicas: Vec<Replica>,
}

impl EpidbCluster {
    /// Create `n_nodes` replicas of an `n_items` database (conflicts
    /// reported, as in the paper).
    pub fn new(n_nodes: usize, n_items: usize) -> EpidbCluster {
        EpidbCluster::with_policy(n_nodes, n_items, ConflictPolicy::Report)
    }

    /// As [`new`](Self::new) with an explicit conflict policy.
    pub fn with_policy(n_nodes: usize, n_items: usize, policy: ConflictPolicy) -> EpidbCluster {
        EpidbCluster {
            replicas: (0..n_nodes)
                .map(|i| Replica::with_policy(NodeId::from_index(i), n_nodes, n_items, policy))
                .collect(),
        }
    }

    /// Shared access to one replica.
    pub fn replica(&self, node: NodeId) -> &Replica {
        &self.replicas[node.index()]
    }

    /// Mutable access to one replica.
    pub fn replica_mut(&mut self, node: NodeId) -> &mut Replica {
        &mut self.replicas[node.index()]
    }

    /// Borrow two distinct replicas mutably.
    fn pair_mut(&mut self, a: NodeId, b: NodeId) -> (&mut Replica, &mut Replica) {
        assert_ne!(a, b, "need two distinct replicas");
        let (ai, bi) = (a.index(), b.index());
        if ai < bi {
            let (lo, hi) = self.replicas.split_at_mut(bi);
            (&mut lo[ai], &mut hi[0])
        } else {
            let (lo, hi) = self.replicas.split_at_mut(ai);
            let (x, y) = (&mut hi[0], &mut lo[bi]);
            (x, y)
        }
    }

    /// One anti-entropy pull: `recipient` from `source` (§5.1), driven
    /// through the engine over the in-process [`LocalTransport`] — the
    /// same dispatch surface the threaded and TCP runtimes use.
    pub fn pull_pair(&mut self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        Engine::pull(r, &mut LocalTransport::new(s))
    }

    /// One out-of-bound copy of `item`: `recipient` from `source` (§5.2).
    pub fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<OobOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        Engine::oob(r, &mut LocalTransport::new(s), item)
    }

    /// One delta-mode pull (§2's update-record shipping, see
    /// `epidb_core::delta`): `recipient` from `source`.
    pub fn pull_delta_pair(&mut self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        Engine::pull_delta(r, &mut LocalTransport::new(s))
    }

    /// One set-reconciliation pull (§15 of the protocol doc): `recipient`
    /// from `source`, descending the digest tree and shipping only the
    /// differing items — the cold-start rung below whole-pull.
    pub fn pull_recon_pair(&mut self, recipient: NodeId, source: NodeId) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        Engine::pull_recon(r, &mut LocalTransport::new(s))
    }

    /// Bound log-vector retention at `node` to `keep` records per
    /// (origin, item) component, raising its coverage floor as pruning
    /// proceeds. Pulls against this node may then degrade to recon.
    pub fn set_log_retention(&mut self, node: NodeId, keep: usize) {
        self.replicas[node.index()].set_log_retention(keep);
    }

    /// As [`pull_pair`](Self::pull_pair), with the exchange subjected to
    /// a caller-owned [`ChaosLink`] and the round retried per `policy` —
    /// the chaos-soak entry point for the in-process runtime.
    pub fn pull_pair_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        let mut transport = ChaosTransport::new(LocalTransport::new(s), link);
        Engine::pull_with(r, &mut transport, policy)
    }

    /// As [`pull_delta_pair`](Self::pull_delta_pair), under chaos with
    /// retries (and the engine's delta-to-whole degradation ladder).
    pub fn pull_delta_pair_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        let mut transport = ChaosTransport::new(LocalTransport::new(s), link);
        Engine::pull_delta_with(r, &mut transport, policy)
    }

    /// Enable the delta op cache on every replica.
    pub fn enable_delta(&mut self, budget_bytes: usize) {
        for r in &mut self.replicas {
            r.enable_delta(budget_bytes);
        }
    }

    /// Turn paranoid mode (per-step invariant audits + protocol tracing)
    /// on or off at every replica. A violation anywhere panics with that
    /// replica's trace, whose last event names the offending step.
    pub fn set_paranoid(&mut self, on: bool) {
        for r in &mut self.replicas {
            r.set_paranoid(on);
        }
    }

    /// Total paranoid post-step audits run across the cluster.
    pub fn paranoid_audits_total(&self) -> u64 {
        self.replicas.iter().map(Replica::audits_run).sum()
    }

    /// Check every replica's invariants (panics with the report on
    /// failure — test/driver helper). While no conflict has been declared
    /// anywhere, the stricter conflict-free invariants apply as well.
    pub fn assert_invariants(&self) {
        let clean = self.conflicts_declared() == 0;
        for r in &self.replicas {
            let result = if clean { r.check_invariants_clean() } else { r.check_invariants() };
            if let Err(e) = result {
                panic!("invariant violated at {}: {e}", r.id());
            }
        }
    }

    /// Total conflict events declared across the cluster so far.
    pub fn conflicts_declared(&self) -> u64 {
        self.replicas.iter().map(|r| r.costs().conflicts_detected).sum()
    }

    /// Total auxiliary copies currently held across the cluster.
    pub fn aux_items_total(&self) -> usize {
        self.replicas.iter().map(Replica::aux_item_count).sum()
    }

    /// Total bytes currently held in auxiliary logs (the storage price of
    /// out-of-bound copying, §6).
    pub fn aux_log_bytes(&self) -> usize {
        self.replicas.iter().map(|r| r.aux_log().payload_bytes()).sum()
    }

    /// Total log-vector records retained across the cluster (bounded by
    /// `n² · N`, and per node by `n · N`, §4.2).
    pub fn log_records_total(&self) -> usize {
        self.replicas.iter().map(|r| r.log().total_len()).sum()
    }

    /// True when, additionally to value convergence, no auxiliary state
    /// remains anywhere (every out-of-bound copy was reabsorbed).
    pub fn fully_converged(&self) -> bool {
        self.converged() && self.aux_items_total() == 0
    }
}

impl SyncProtocol for EpidbCluster {
    fn name(&self) -> &'static str {
        "epidb"
    }

    fn n_nodes(&self) -> usize {
        self.replicas.len()
    }

    fn n_items(&self) -> usize {
        self.replicas[0].n_items()
    }

    fn update(&mut self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        self.replicas.get_mut(node.index()).ok_or(Error::UnknownNode(node))?.update(item, op)
    }

    fn sync(&mut self, recipient: NodeId, source: NodeId) -> Result<SyncReport> {
        if recipient == source {
            return Ok(SyncReport { up_to_date: true, ..SyncReport::default() });
        }
        let outcome = self.pull_pair(recipient, source)?;
        Ok(match outcome {
            PullOutcome::UpToDate => SyncReport { up_to_date: true, ..SyncReport::default() },
            PullOutcome::Propagated(o) => SyncReport {
                items_copied: o.copied.len(),
                conflicts: o.conflicts,
                up_to_date: false,
            },
        })
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.replicas[node.index()].read_regular(item).expect("item exists").as_bytes().to_vec()
    }

    fn costs(&self) -> Costs {
        self.replicas.iter().map(|r| r.costs()).fold(Costs::ZERO, |a, b| a + b)
    }

    fn node_costs(&self, node: NodeId) -> Costs {
        self.replicas[node.index()].costs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_drives_protocol_through_trait() {
        let mut c = EpidbCluster::new(3, 10);
        c.update(NodeId(0), ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(rep.items_copied, 1);
        let rep = c.sync(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(rep.items_copied, 1);
        assert!(c.converged());
        let rep = c.sync(NodeId(2), NodeId(1)).unwrap();
        assert!(rep.up_to_date);
        c.assert_invariants();
    }

    #[test]
    fn oob_tracked_in_aux_accounting() {
        let mut c = EpidbCluster::new(2, 10);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"hot"[..])).unwrap();
        c.oob(NodeId(1), NodeId(0), ItemId(0)).unwrap();
        assert_eq!(c.aux_items_total(), 1);
        assert!(!c.fully_converged());
        c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(c.aux_items_total(), 0);
        assert!(c.fully_converged());
    }

    #[test]
    fn recon_pull_converges_compacted_pair() {
        let mut c = EpidbCluster::new(2, 32);
        for i in 0..32 {
            c.update(NodeId(0), ItemId(i), UpdateOp::set(vec![i as u8])).unwrap();
        }
        c.pull_pair(NodeId(1), NodeId(0)).unwrap();
        // Advance a few items, then compact the source's log so a plain
        // pull could no longer cover the recipient's gap.
        for i in 0..3 {
            c.update(NodeId(0), ItemId(i), UpdateOp::set(&b"new"[..])).unwrap();
        }
        c.set_log_retention(NodeId(0), 1);
        let out = c.pull_recon_pair(NodeId(1), NodeId(0)).unwrap();
        assert!(matches!(out, PullOutcome::Propagated(_)));
        assert!(c.converged());
        c.assert_invariants();
    }

    #[test]
    fn pair_mut_both_orders() {
        let mut c = EpidbCluster::new(3, 2);
        c.update(NodeId(2), ItemId(0), UpdateOp::set(&b"z"[..])).unwrap();
        c.pull_pair(NodeId(0), NodeId(2)).unwrap();
        c.pull_pair(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(c.value(NodeId(0), ItemId(0)), b"z");
    }
}
