//! Plain-text result tables for the experiment harness. The `experiments`
//! binary prints these; EXPERIMENTS.md records them.

use std::fmt;

/// A rendered experiment result: a title, a caption tying it to the paper's
//  claim, column headers, and string rows.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and name, e.g. "T1: anti-entropy overhead vs N".
    pub title: String,
    /// Which claim of the paper this regenerates.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the headers.
    pub fn headers<S: Into<String>>(mut self, headers: Vec<S>) -> Table {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        if !self.caption.is_empty() {
            writeln!(f, "   {}", self.caption)?;
        }
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:>width$}", width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "  ")?;
        for (i, width) in w.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*width))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Human-friendly large-number formatting (`12_345` → `12.3k`).
pub fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1_000_000.0)
    } else if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1_000.0)
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T0: demo", "demo caption").headers(vec!["N", "work"]);
        t.row(vec!["1000", "42"]);
        t.row(vec!["10", "123456"]);
        let s = t.to_string();
        assert!(s.contains("T0: demo"));
        assert!(s.contains("demo caption"));
        assert!(s.lines().count() >= 5);
        // Cells right-aligned to the widest entry.
        assert!(s.contains("  1000 |     42"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", "").headers(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn fmt_count_scales() {
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(12_345), "12.3k");
        assert_eq!(fmt_count(12_345_678), "12.3M");
    }
}
