//! Anti-entropy schedulers: which pairs exchange updates each round.
//!
//! The paper's correctness theorem (§7) requires only that every node
//! eventually performs update propagation *transitively* from every other
//! node; the schedules below all satisfy that (over enough rounds, for the
//! random one with probability 1) while stressing different topologies.

use epidb_common::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// A propagation schedule.
#[derive(Clone, Copy, Debug)]
pub enum Schedule {
    /// Every node pulls from one uniformly random other node each round —
    /// the classic epidemic schedule.
    RandomPairwise,
    /// Node `i` pulls from node `i − 1 (mod n)` each round.
    Ring,
    /// Spokes pull from the hub, then the hub pulls from one random spoke.
    Star {
        /// The hub node.
        hub: NodeId,
    },
}

impl Schedule {
    /// The `(recipient, source)` pulls of one round, in execution order.
    /// Nodes marked dead in `alive` neither pull nor serve.
    pub fn round(&self, n: usize, alive: &[bool], rng: &mut StdRng) -> Vec<(NodeId, NodeId)> {
        assert_eq!(alive.len(), n);
        let alive_nodes: Vec<NodeId> = NodeId::all(n).filter(|node| alive[node.index()]).collect();
        if alive_nodes.len() < 2 {
            return Vec::new();
        }
        match *self {
            Schedule::RandomPairwise => {
                let mut pairs = Vec::with_capacity(alive_nodes.len());
                for &r in &alive_nodes {
                    loop {
                        let s = alive_nodes[rng.gen_range(0..alive_nodes.len())];
                        if s != r {
                            pairs.push((r, s));
                            break;
                        }
                    }
                }
                pairs
            }
            Schedule::Ring => {
                // Ring over the alive nodes, in id order.
                let k = alive_nodes.len();
                (0..k).map(|i| (alive_nodes[i], alive_nodes[(i + k - 1) % k])).collect()
            }
            Schedule::Star { hub } => {
                if !alive[hub.index()] {
                    // Hub down: fall back to a ring so the schedule stays
                    // transitive.
                    return Schedule::Ring.round(n, alive, rng);
                }
                let mut pairs: Vec<(NodeId, NodeId)> =
                    alive_nodes.iter().filter(|&&s| s != hub).map(|&s| (s, hub)).collect();
                let spokes: Vec<NodeId> =
                    alive_nodes.iter().copied().filter(|&s| s != hub).collect();
                if !spokes.is_empty() {
                    pairs.push((hub, spokes[rng.gen_range(0..spokes.len())]));
                }
                pairs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn random_pairwise_every_alive_node_pulls_once() {
        let alive = vec![true; 6];
        let pairs = Schedule::RandomPairwise.round(6, &alive, &mut rng());
        assert_eq!(pairs.len(), 6);
        for (r, s) in &pairs {
            assert_ne!(r, s);
        }
        let mut recipients: Vec<u16> = pairs.iter().map(|(r, _)| r.0).collect();
        recipients.sort_unstable();
        assert_eq!(recipients, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dead_nodes_are_excluded() {
        let mut alive = vec![true; 4];
        alive[2] = false;
        for sched in [Schedule::RandomPairwise, Schedule::Ring, Schedule::Star { hub: NodeId(0) }] {
            for (r, s) in sched.round(4, &alive, &mut rng()) {
                assert_ne!(r, NodeId(2));
                assert_ne!(s, NodeId(2));
            }
        }
    }

    #[test]
    fn ring_is_a_cycle() {
        let alive = vec![true; 4];
        let pairs = Schedule::Ring.round(4, &alive, &mut rng());
        assert_eq!(
            pairs,
            vec![
                (NodeId(0), NodeId(3)),
                (NodeId(1), NodeId(0)),
                (NodeId(2), NodeId(1)),
                (NodeId(3), NodeId(2)),
            ]
        );
    }

    #[test]
    fn star_spokes_pull_hub() {
        let alive = vec![true; 4];
        let pairs = Schedule::Star { hub: NodeId(1) }.round(4, &alive, &mut rng());
        // 3 spoke pulls + 1 hub pull.
        assert_eq!(pairs.len(), 4);
        assert!(pairs[..3].iter().all(|&(_, s)| s == NodeId(1)));
        assert_eq!(pairs[3].0, NodeId(1));
    }

    #[test]
    fn star_with_dead_hub_degrades_to_ring() {
        let mut alive = vec![true; 4];
        alive[0] = false;
        let pairs = Schedule::Star { hub: NodeId(0) }.round(4, &alive, &mut rng());
        assert_eq!(pairs.len(), 3); // ring over 3 alive nodes
    }

    #[test]
    fn single_alive_node_yields_no_pairs() {
        let alive = vec![true, false, false];
        assert!(Schedule::RandomPairwise.round(3, &alive, &mut rng()).is_empty());
    }
}
