#![warn(missing_docs)]

//! `epidb-sim` — deterministic cluster simulation, workload generation,
//! correctness auditing, and the experiment suite reproducing every claim
//! of the paper's evaluation (see DESIGN.md for the experiment index).
//!
//! The simulator is single-process and deterministic: protocol overhead is
//! measured in the *operation counts* the paper's complexity analysis is
//! stated in (version-vector entry comparisons, log records examined, item
//! scans, bytes shipped), so results are exactly reproducible and
//! independent of machine speed. Wall-clock benchmarks live in
//! `epidb-bench` on top of the same machinery.

pub mod audit;
pub mod cluster;
pub mod driver;
pub mod experiments;
pub mod schedule;
pub mod sharded;
pub mod table;
pub mod workload;

pub use audit::{histories_conflict, run_audit, AuditConfig, AuditReport};
pub use cluster::EpidbCluster;
pub use driver::{Driver, DriverConfig};
pub use schedule::Schedule;
pub use sharded::ShardedSimCluster;
pub use table::{fmt_count, Table};
pub use workload::{GeneratedUpdate, Workload, WorkloadKind};
