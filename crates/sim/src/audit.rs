//! The correctness auditor: checks the paper's update-propagation
//! correctness criteria (§2.1) over randomized executions.
//!
//! The trick that makes auditing exact: audited workloads use *append-only*
//! updates with unique payloads, so a copy's byte value **is** its update
//! history, and the paper's definitions translate directly to byte strings:
//!
//! * two copies are *inconsistent* iff neither value is a prefix of the
//!   other (Definition 1);
//! * a copy is *older* iff its value is a proper prefix (Definition 2);
//! * criterion 1 — every pair of prefix-incomparable final copies must have
//!   had a conflict declared for that item somewhere;
//! * criterion 2 — whenever propagation replaces a regular copy, the old
//!   value must be a prefix of the new one (updates only ever acquired from
//!   a strictly newer replica);
//! * criterion 3 — once update activity stops and propagation keeps
//!   running transitively, all replicas of every non-conflicted item
//!   converge (and all auxiliary state drains).

use epidb_baselines::SyncProtocol;
use epidb_common::{ItemId, NodeId};
use epidb_core::{ConflictPolicy, PullOutcome};
use epidb_store::UpdateOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::cluster::EpidbCluster;

/// Configuration of one audited run.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Servers.
    pub n_nodes: usize,
    /// Items.
    pub n_items: usize,
    /// Update operations per round.
    pub updates_per_round: usize,
    /// Rounds of mixed activity (updates + pulls + out-of-bound copies).
    pub rounds: usize,
    /// Out-of-bound copies attempted per round.
    pub oob_per_round: usize,
    /// If true, any node may update any item (conflict-prone); if false,
    /// items are single-writer partitioned (conflict-free).
    pub conflict_prone: bool,
    /// If true, one node is crashed for a window of the mixed-activity
    /// phase (no updates arrive there, no pulls touch it), then revived
    /// before quiescence — criterion 3 must still hold.
    pub crash_window: bool,
    /// If true (the default, so every audited test run gets it), each
    /// replica runs in paranoid mode: a full invariant audit after every
    /// protocol step, panicking with the protocol trace on a violation.
    pub paranoid: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            n_nodes: 4,
            n_items: 24,
            updates_per_round: 8,
            rounds: 30,
            oob_per_round: 2,
            conflict_prone: false,
            crash_window: false,
            paranoid: true,
            seed: 1,
        }
    }
}

/// What the auditor observed.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Criterion-2 violations: adoptions where the old regular value was
    /// not a prefix of the new one. Must be zero.
    pub adoption_violations: usize,
    /// Items that had a conflict declared at some node.
    pub conflicted_items: HashSet<ItemId>,
    /// Criterion-1 violations: item pairs left prefix-incomparable at
    /// quiescence with no conflict ever declared for the item. Must be
    /// empty.
    pub undetected_divergences: Vec<ItemId>,
    /// Criterion-3: did every non-conflicted item converge (including
    /// auxiliary drain-down) at quiescence?
    pub converged_clean: bool,
    /// Auxiliary copies left anywhere at quiescence (should be zero unless
    /// conflicts froze replay).
    pub aux_leftovers: usize,
    /// Updates applied in total.
    pub updates_applied: u64,
    /// Pulls executed in total.
    pub pulls: u64,
    /// Paranoid post-step audits run across the cluster (0 when paranoid
    /// mode was off; each one passed, or the run would have panicked).
    pub paranoid_audits: u64,
}

impl AuditReport {
    /// True iff all three criteria held.
    pub fn all_criteria_hold(&self) -> bool {
        self.adoption_violations == 0
            && self.undetected_divergences.is_empty()
            && self.converged_clean
    }
}

fn is_prefix(a: &[u8], b: &[u8]) -> bool {
    a.len() <= b.len() && &b[..a.len()] == a
}

/// Prefix-incomparable = inconsistent histories (Definition 1).
pub fn histories_conflict(a: &[u8], b: &[u8]) -> bool {
    !is_prefix(a, b) && !is_prefix(b, a)
}

/// Run one audited execution of the paper's protocol.
pub fn run_audit(cfg: AuditConfig) -> AuditReport {
    let mut cluster = EpidbCluster::with_policy(cfg.n_nodes, cfg.n_items, ConflictPolicy::Report);
    cluster.set_paranoid(cfg.paranoid);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = AuditReport::default();
    let mut update_counter: u64 = 0;

    let do_pull = |cluster: &mut EpidbCluster,
                   report: &mut AuditReport,
                   recipient: NodeId,
                   source: NodeId| {
        // Snapshot the recipient's regular values for the criterion-2
        // prefix check.
        let before: Vec<Vec<u8>> =
            (0..cfg.n_items).map(|x| cluster.value(recipient, ItemId::from_index(x))).collect();
        let outcome = cluster.pull_pair(recipient, source).expect("pull");
        report.pulls += 1;
        if let PullOutcome::Propagated(out) = outcome {
            for &x in &out.copied {
                let after = cluster.value(recipient, x);
                if !is_prefix(&before[x.index()], &after) {
                    report.adoption_violations += 1;
                }
            }
        }
        for ev in cluster.replica_mut(recipient).drain_conflicts() {
            report.conflicted_items.insert(ev.item);
        }
    };

    // Mixed-activity phase. Optionally one node is down for the middle
    // third of the run.
    let crash_victim = cfg.n_nodes - 1;
    let crash_from = cfg.rounds / 3;
    let crash_to = 2 * cfg.rounds / 3;
    for round in 0..cfg.rounds {
        let down = |node: usize| {
            cfg.crash_window && node == crash_victim && (crash_from..crash_to).contains(&round)
        };
        for _ in 0..cfg.updates_per_round {
            let item = ItemId::from_index(rng.gen_range(0..cfg.n_items));
            let node = if cfg.conflict_prone {
                NodeId::from_index(rng.gen_range(0..cfg.n_nodes))
            } else {
                NodeId::from_index(item.index() % cfg.n_nodes)
            };
            if down(node.index()) {
                continue; // a crashed server accepts no user operations
            }
            update_counter += 1;
            let mut payload = update_counter.to_le_bytes().to_vec();
            payload.push(b';');
            cluster.update(node, item, UpdateOp::append(payload)).expect("update");
            report.updates_applied += 1;
        }
        for _ in 0..cfg.oob_per_round {
            let r = rng.gen_range(0..cfg.n_nodes);
            let mut s = rng.gen_range(0..cfg.n_nodes);
            if s == r {
                s = (s + 1) % cfg.n_nodes;
            }
            let item = ItemId::from_index(rng.gen_range(0..cfg.n_items));
            if down(r) || down(s) {
                continue;
            }
            let recipient = NodeId::from_index(r);
            let source = NodeId::from_index(s);
            let _ = cluster.oob(recipient, source, item).expect("oob");
            for ev in cluster.replica_mut(recipient).drain_conflicts() {
                report.conflicted_items.insert(ev.item);
            }
        }
        // One random-pairwise round of pulls.
        for r in 0..cfg.n_nodes {
            let mut s = rng.gen_range(0..cfg.n_nodes);
            if s == r {
                s = (s + 1) % cfg.n_nodes;
            }
            if down(r) || down(s) {
                continue;
            }
            do_pull(&mut cluster, &mut report, NodeId::from_index(r), NodeId::from_index(s));
        }
        cluster.assert_invariants();
    }

    // Quiescence phase: update activity stops; run all-pairs sweeps so
    // every node propagates transitively from every other (§7's premise).
    for _sweep in 0..(2 * cfg.n_nodes + 2) {
        for r in 0..cfg.n_nodes {
            for s in 0..cfg.n_nodes {
                if r != s {
                    do_pull(
                        &mut cluster,
                        &mut report,
                        NodeId::from_index(r),
                        NodeId::from_index(s),
                    );
                }
            }
        }
        if cluster.fully_converged() {
            break;
        }
    }
    cluster.assert_invariants();

    // Final judgement.
    report.paranoid_audits = cluster.paranoid_audits_total();
    report.aux_leftovers = cluster.aux_items_total();
    let mut divergent_ok = true;
    for x in ItemId::all(cfg.n_items) {
        // Compare regular copies pairwise across nodes.
        let values: Vec<Vec<u8>> =
            NodeId::all(cfg.n_nodes).map(|node| cluster.value(node, x)).collect();
        let mut item_diverges = false;
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                if values[i] != values[j] {
                    item_diverges = true;
                    if histories_conflict(&values[i], &values[j])
                        && !report.conflicted_items.contains(&x)
                    {
                        report.undetected_divergences.push(x);
                    }
                }
            }
        }
        if item_diverges && !report.conflicted_items.contains(&x) {
            // Divergent without a declared conflict: criterion 3 failed for
            // this item (obsolete replica never caught up).
            divergent_ok = false;
        }
    }
    report.undetected_divergences.sort();
    report.undetected_divergences.dedup();
    report.converged_clean = divergent_ok
        && (report.conflicted_items.is_empty()
            // With conflicts, aux state may legitimately be frozen.
            || report.aux_leftovers == 0 || !report.conflicted_items.is_empty());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_helpers() {
        assert!(is_prefix(b"", b"abc"));
        assert!(is_prefix(b"ab", b"abc"));
        assert!(!is_prefix(b"abc", b"ab"));
        assert!(!histories_conflict(b"ab", b"abc"));
        assert!(histories_conflict(b"abx", b"aby"));
    }

    #[test]
    fn conflict_free_run_satisfies_all_criteria() {
        let report = run_audit(AuditConfig::default());
        assert_eq!(report.adoption_violations, 0);
        assert!(report.conflicted_items.is_empty(), "unexpected conflicts");
        assert!(report.undetected_divergences.is_empty());
        assert!(report.converged_clean, "criterion 3 failed: {report:?}");
        assert_eq!(report.aux_leftovers, 0);
        assert!(report.all_criteria_hold());
        // Paranoid mode is on by default: every step was audited (and
        // passed, or the run would have panicked with a trace dump).
        assert!(report.paranoid_audits > 0);
    }

    #[test]
    fn paranoid_off_runs_no_audits() {
        let report = run_audit(AuditConfig { paranoid: false, ..AuditConfig::default() });
        assert_eq!(report.paranoid_audits, 0);
        assert!(report.all_criteria_hold());
    }

    #[test]
    fn conflict_prone_run_detects_every_divergence() {
        let report = run_audit(AuditConfig {
            conflict_prone: true,
            rounds: 20,
            oob_per_round: 0,
            seed: 99,
            ..AuditConfig::default()
        });
        assert_eq!(report.adoption_violations, 0);
        // Conflicts are expected — but every surviving divergence must have
        // been declared (criterion 1).
        assert!(report.undetected_divergences.is_empty(), "undetected: {report:?}");
    }

    #[test]
    fn audit_is_deterministic() {
        let a = run_audit(AuditConfig { seed: 5, ..AuditConfig::default() });
        let b = run_audit(AuditConfig { seed: 5, ..AuditConfig::default() });
        assert_eq!(a.updates_applied, b.updates_applied);
        assert_eq!(a.pulls, b.pulls);
        assert_eq!(a.adoption_violations, b.adoption_violations);
    }
}
