//! Deterministic in-process simulation of a *sharded* deployment: the
//! per-shard protocol of [`epidb_core::shard`], driven by explicit
//! schedules — the in-process analogue of
//! `epidb_net::ShardedThreadedCluster` / `ShardedTcpCluster`, with the
//! same dispatch surface ([`Engine::handle_sharded`] at the serving node,
//! [`ShardTransport`] envelopes on the wire) so per-node costs match the
//! live runtimes byte for byte.

use epidb_common::{Costs, Error, ItemId, NodeId, Result, ShardId};
use epidb_core::{
    ChaosLink, ChaosTransport, ConflictPolicy, Engine, LocalShardedTransport, PullOutcome,
    RetryPolicy, ShardMap, ShardTransport, ShardedNode, ShardedOob,
};
use epidb_store::UpdateOp;

/// A simulated sharded cluster: one [`ShardedNode`] per server, placed by
/// a shared [`ShardMap`]. Exchanges are direct in-process calls; every
/// pull and out-of-bound copy still routes through the engine's shard
/// envelope, exactly as over channels or sockets.
pub struct ShardedSimCluster {
    nodes: Vec<ShardedNode>,
    map: ShardMap,
}

impl ShardedSimCluster {
    /// Create `n_nodes` sharded nodes placed by `map` (conflicts
    /// reported, as in the paper).
    pub fn new(map: ShardMap, n_nodes: usize) -> ShardedSimCluster {
        ShardedSimCluster::with_policy(map, n_nodes, ConflictPolicy::Report)
    }

    /// As [`new`](Self::new) with an explicit conflict policy.
    pub fn with_policy(map: ShardMap, n_nodes: usize, policy: ConflictPolicy) -> ShardedSimCluster {
        ShardedSimCluster {
            nodes: (0..n_nodes)
                .map(|i| ShardedNode::new(NodeId::from_index(i), n_nodes, map.clone(), policy))
                .collect(),
            map,
        }
    }

    /// The placement map the cluster was built with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Shared access to one node.
    pub fn node(&self, node: NodeId) -> &ShardedNode {
        &self.nodes[node.index()]
    }

    /// Mutable access to one node.
    pub fn node_mut(&mut self, node: NodeId) -> &mut ShardedNode {
        &mut self.nodes[node.index()]
    }

    /// Borrow two distinct nodes mutably.
    fn pair_mut(&mut self, a: NodeId, b: NodeId) -> (&mut ShardedNode, &mut ShardedNode) {
        assert_ne!(a, b, "need two distinct nodes");
        let (ai, bi) = (a.index(), b.index());
        if ai < bi {
            let (lo, hi) = self.nodes.split_at_mut(bi);
            (&mut lo[ai], &mut hi[0])
        } else {
            let (lo, hi) = self.nodes.split_at_mut(ai);
            let (x, y) = (&mut hi[0], &mut lo[bi]);
            (x, y)
        }
    }

    /// Apply a user update at `node` (globally addressed item, routed
    /// through the node's shard map).
    pub fn update(&mut self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        self.nodes.get_mut(node.index()).ok_or(Error::UnknownNode(node))?.update(item, op)
    }

    /// Read the user-visible value at `node`.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        Ok(self
            .nodes
            .get(node.index())
            .ok_or(Error::UnknownNode(node))?
            .read(item)?
            .as_bytes()
            .to_vec())
    }

    /// One anti-entropy pull of `shard`: `recipient` from `source`,
    /// driven through the engine over the shard envelope.
    pub fn pull_shard(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        let replica = r.shard_state_mut(shard).ok_or(Error::ShardMoving(shard))?;
        let mut local = LocalShardedTransport::new(s);
        let mut transport = ShardTransport::new(&mut local, shard);
        Engine::pull(replica, &mut transport)
    }

    /// As [`pull_shard`](Self::pull_shard), in delta mode.
    pub fn pull_delta_shard(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        let replica = r.shard_state_mut(shard).ok_or(Error::ShardMoving(shard))?;
        let mut local = LocalShardedTransport::new(s);
        let mut transport = ShardTransport::new(&mut local, shard);
        Engine::pull_delta(replica, &mut transport)
    }

    /// As [`pull_shard`](Self::pull_shard), via digest-tree set
    /// reconciliation — the cold-start rung for a shard whose source log
    /// no longer covers the recipient.
    pub fn pull_recon_shard(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        let replica = r.shard_state_mut(shard).ok_or(Error::ShardMoving(shard))?;
        let mut local = LocalShardedTransport::new(s);
        let mut transport = ShardTransport::new(&mut local, shard);
        Engine::pull_recon(replica, &mut transport)
    }

    /// Bound log retention to `keep` records per component on every shard
    /// `node` owns, raising coverage floors as pruning proceeds.
    pub fn set_log_retention(&mut self, node: NodeId, keep: usize) {
        self.nodes[node.index()].set_log_retention(keep);
    }

    /// As [`pull_shard`](Self::pull_shard), with the exchange subjected
    /// to a caller-owned [`ChaosLink`] and the round retried per
    /// `policy` — the chaos-soak entry point for the in-process runtime.
    pub fn pull_shard_chaos(
        &mut self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        let (r, s) = self.pair_mut(recipient, source);
        let replica = r.shard_state_mut(shard).ok_or(Error::ShardMoving(shard))?;
        let local = LocalShardedTransport::new(s);
        let mut chaos = ChaosTransport::new(local, link);
        let mut transport = ShardTransport::new(&mut chaos, shard);
        Engine::pull_with(replica, &mut transport, policy)
    }

    /// Resolve an out-of-bound copy of a globally addressed item at
    /// `recipient`, served by `source` — within-group it adopts into the
    /// owned shard (§5.2), cross-group it fetches via the shard map.
    pub fn oob(&mut self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<ShardedOob> {
        let (r, s) = self.pair_mut(recipient, source);
        let mut transport = LocalShardedTransport::new(s);
        Engine::oob_sharded(r, &mut transport, item)
    }

    /// Enable the delta op cache on every shard of every node.
    pub fn enable_delta(&mut self, budget_bytes: usize) {
        for n in &mut self.nodes {
            n.enable_delta(budget_bytes);
        }
    }

    /// Turn paranoid mode (per-step §2.1 audits) on or off for every
    /// shard of every node.
    pub fn set_paranoid(&mut self, on: bool) {
        for n in &mut self.nodes {
            n.set_paranoid(on);
        }
    }

    /// Total paranoid post-step audits run across all nodes and shards.
    pub fn paranoid_audits_total(&self) -> u64 {
        self.nodes.iter().map(ShardedNode::audits_run).sum()
    }

    /// A node's cumulative costs: the sum over its owned shards plus its
    /// cross-group meta-costs.
    pub fn node_costs(&self, node: NodeId) -> Costs {
        self.nodes[node.index()].costs()
    }

    /// Check every node's per-shard invariants; panics with the offending
    /// node and shard on violation (test/driver helper).
    pub fn assert_invariants(&self) {
        let clean = self.nodes.iter().all(|n| n.conflicts_declared() == 0);
        for n in &self.nodes {
            let result = if clean { n.check_invariants_clean() } else { n.check_invariants() };
            if let Err(e) = result {
                panic!("invariant violated at {}: {e}", n.id());
            }
        }
    }

    /// True when, for every shard, all owners hold equal shard DBVVs and
    /// no auxiliary state remains — per-shard convergence across the
    /// whole deployment.
    pub fn converged(&self) -> bool {
        ShardId::all(self.map.n_shards()).all(|shard| {
            let states: Vec<_> = self
                .map
                .owners(shard)
                .iter()
                .filter_map(|&n| self.nodes[n.index()].shard_state(shard))
                .collect();
            match states.split_first() {
                None => true,
                Some((first, rest)) => {
                    first.aux_item_count() == 0
                        && rest.iter().all(|r| {
                            r.aux_item_count() == 0
                                && r.dbvv().compare(first.dbvv()) == epidb_vv::VvOrd::Equal
                        })
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 nodes, 2 groups × 2 nodes, 2 shards × 4 items.
    fn two_group_map() -> ShardMap {
        ShardMap::new(4, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]])
    }

    #[test]
    fn per_shard_schedules_converge() {
        let mut c = ShardedSimCluster::new(two_group_map(), 4);
        c.set_paranoid(true);
        c.update(NodeId(0), ItemId(1), UpdateOp::set(&b"left"[..])).unwrap();
        c.update(NodeId(2), ItemId(5), UpdateOp::set(&b"right"[..])).unwrap();
        assert!(!c.converged());
        c.pull_shard(NodeId(1), NodeId(0), ShardId(0)).unwrap();
        c.pull_shard(NodeId(3), NodeId(2), ShardId(1)).unwrap();
        assert!(c.converged());
        assert_eq!(c.read(NodeId(1), ItemId(1)).unwrap(), b"left");
        assert_eq!(c.read(NodeId(3), ItemId(5)).unwrap(), b"right");
        c.assert_invariants();
        assert!(c.paranoid_audits_total() > 0);
    }

    #[test]
    fn recon_pull_heals_compacted_shard() {
        let mut c = ShardedSimCluster::new(two_group_map(), 4);
        for i in 0..4 {
            c.update(NodeId(0), ItemId(i), UpdateOp::set(vec![i as u8])).unwrap();
        }
        c.pull_shard(NodeId(1), NodeId(0), ShardId(0)).unwrap();
        c.update(NodeId(0), ItemId(2), UpdateOp::set(&b"new"[..])).unwrap();
        c.set_log_retention(NodeId(0), 1);
        let out = c.pull_recon_shard(NodeId(1), NodeId(0), ShardId(0)).unwrap();
        assert!(matches!(out, PullOutcome::Propagated(_)));
        assert_eq!(c.read(NodeId(1), ItemId(2)).unwrap(), b"new");
        c.assert_invariants();
    }

    #[test]
    fn cross_group_oob_and_redirects() {
        let mut c = ShardedSimCluster::new(two_group_map(), 4);
        c.update(NodeId(2), ItemId(5), UpdateOp::set(&b"hot"[..])).unwrap();
        match c.oob(NodeId(0), NodeId(2), ItemId(5)).unwrap() {
            ShardedOob::Fetched { value, .. } => assert_eq!(&value[..], b"hot"),
            other => panic!("expected cross-group fetch, got {other:?}"),
        }
        assert!(matches!(c.read(NodeId(0), ItemId(5)), Err(Error::NotServedHere { .. })));
    }

    #[test]
    fn chaos_pulls_retry_to_convergence() {
        use epidb_core::FaultPlan;
        let mut c = ShardedSimCluster::new(two_group_map(), 4);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        let mut link = ChaosLink::new(7, FaultPlan::lossy(0.3));
        let policy = RetryPolicy::attempts(16);
        c.pull_shard_chaos(NodeId(1), NodeId(0), ShardId(0), &mut link, &policy).unwrap();
        assert_eq!(c.read(NodeId(1), ItemId(0)).unwrap(), b"v");
    }
}
