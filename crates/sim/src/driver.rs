//! The simulation driver: applies a workload, runs a propagation schedule,
//! and measures convergence — with optional failure injection.

use epidb_baselines::SyncProtocol;
use epidb_common::{NodeId, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schedule::Schedule;
use crate::workload::GeneratedUpdate;

/// Controls one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Schedule used for propagation rounds.
    pub schedule: Schedule,
    /// RNG seed for the schedule (independent of the workload's seed).
    pub seed: u64,
    /// Hard cap on rounds when driving to convergence.
    pub max_rounds: usize,
    /// Probability that any individual pull/push silently fails (lossy
    /// network).
    pub loss_probability: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            schedule: Schedule::RandomPairwise,
            seed: 0xEB1D,
            max_rounds: 10_000,
            loss_probability: 0.0,
        }
    }
}

/// A driver bound to one protocol instance.
pub struct Driver<'a, P: SyncProtocol + ?Sized> {
    protocol: &'a mut P,
    alive: Vec<bool>,
    /// Partition id per node; exchanges only succeed within a partition.
    partition: Vec<u32>,
    rng: StdRng,
    schedule: Schedule,
    max_rounds: usize,
    loss_probability: f64,
    rounds_run: usize,
}

impl<'a, P: SyncProtocol + ?Sized> Driver<'a, P> {
    /// Wrap a protocol instance.
    pub fn new(protocol: &'a mut P, config: DriverConfig) -> Driver<'a, P> {
        let n = protocol.n_nodes();
        Driver {
            protocol,
            alive: vec![true; n],
            partition: vec![0; n],
            rng: StdRng::seed_from_u64(config.seed),
            schedule: config.schedule,
            max_rounds: config.max_rounds,
            loss_probability: config.loss_probability,
            rounds_run: 0,
        }
    }

    /// The wrapped protocol.
    pub fn protocol(&mut self) -> &mut P {
        self.protocol
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Crash a node: it stops pulling and serving until revived.
    pub fn crash(&mut self, node: NodeId) {
        self.alive[node.index()] = false;
    }

    /// Revive a crashed node.
    pub fn revive(&mut self, node: NodeId) {
        self.alive[node.index()] = true;
    }

    /// Split the network: assign each node a partition id; pulls only
    /// succeed between nodes sharing an id.
    pub fn partition(&mut self, assignment: &[u32]) {
        assert_eq!(assignment.len(), self.partition.len());
        self.partition.copy_from_slice(assignment);
    }

    /// Heal all partitions.
    pub fn heal_partitions(&mut self) {
        self.partition.fill(0);
    }

    /// True if `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Apply a batch of generated updates at their target nodes (skipping
    /// crashed nodes — a dead server accepts no user operations).
    pub fn apply_updates(&mut self, updates: &[GeneratedUpdate]) -> Result<usize> {
        let mut applied = 0;
        for u in updates {
            if self.alive[u.node.index()] {
                self.protocol.update(u.node, u.item, u.op.clone())?;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Run one propagation round per the schedule. Returns the number of
    /// item copies moved.
    pub fn round(&mut self) -> Result<usize> {
        self.rounds_run += 1;
        let n = self.protocol.n_nodes();
        let mut moved = 0;
        if self.protocol.supports_pull() {
            for (recipient, source) in self.schedule.round(n, &self.alive, &mut self.rng) {
                if self.partition[recipient.index()] != self.partition[source.index()] {
                    continue; // severed link
                }
                if self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability) {
                    continue; // lost exchange
                }
                moved += self.protocol.sync(recipient, source)?.items_copied;
            }
        } else {
            // Push-based protocol: every alive node pushes its accumulated
            // updates.
            let alive = self.alive.clone();
            for origin in NodeId::all(n) {
                if alive[origin.index()] {
                    moved += self.protocol.push(origin, &alive)?.items_copied;
                }
            }
        }
        Ok(moved)
    }

    /// Run rounds until the *alive* part of the cluster converges (or the
    /// round cap is hit). Returns the number of rounds taken, or `None` if
    /// the cap was reached without convergence.
    pub fn run_to_convergence(&mut self) -> Result<Option<usize>> {
        for round in 1..=self.max_rounds {
            self.round()?;
            if self.alive_converged() {
                return Ok(Some(round));
            }
        }
        Ok(None)
    }

    /// True if all *alive* replicas hold identical values for every item.
    pub fn alive_converged(&self) -> bool {
        let n = self.protocol.n_nodes();
        let alive: Vec<NodeId> = NodeId::all(n).filter(|x| self.alive[x.index()]).collect();
        if alive.len() <= 1 {
            return true;
        }
        for x in (0..self.protocol.n_items()).map(epidb_common::ItemId::from_index) {
            let v0 = self.protocol.value(alive[0], x);
            if alive[1..].iter().any(|&node| self.protocol.value(node, x) != v0) {
                return false;
            }
        }
        true
    }

    /// Count `(node, item)` pairs at alive nodes whose value differs from
    /// the most-replicated value of that item — a staleness measure for
    /// convergence plots.
    pub fn stale_copy_count(&self) -> usize {
        let n = self.protocol.n_nodes();
        let alive: Vec<NodeId> = NodeId::all(n).filter(|x| self.alive[x.index()]).collect();
        let mut stale = 0;
        for x in (0..self.protocol.n_items()).map(epidb_common::ItemId::from_index) {
            // Majority value = the consensus candidate.
            let values: Vec<Vec<u8>> = alive.iter().map(|&a| self.protocol.value(a, x)).collect();
            let mut best = 0;
            for (i, v) in values.iter().enumerate() {
                let count = values.iter().filter(|w| *w == v).count();
                if count > values.iter().filter(|w| *w == &values[best]).count() {
                    best = i;
                }
            }
            stale += values.iter().filter(|v| *v != &values[best]).count();
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::EpidbCluster;
    use crate::workload::{Workload, WorkloadKind};

    #[test]
    fn drives_epidb_to_convergence() {
        let mut cluster = EpidbCluster::new(4, 50);
        let mut wl = Workload::new(WorkloadKind::SingleWriter, 4, 50, 16, 3);
        let updates = wl.take(100);
        let mut driver = Driver::new(&mut cluster, DriverConfig::default());
        driver.apply_updates(&updates).unwrap();
        let rounds = driver.run_to_convergence().unwrap();
        assert!(rounds.is_some(), "did not converge");
        assert!(driver.alive_converged());
        cluster.assert_invariants();
        assert_eq!(cluster.conflicts_declared(), 0);
    }

    #[test]
    fn crashed_node_excluded_from_rounds_and_updates() {
        let mut cluster = EpidbCluster::new(3, 10);
        let mut driver = Driver::new(&mut cluster, DriverConfig::default());
        driver.crash(NodeId(2));
        let updates = vec![GeneratedUpdate {
            node: NodeId(2),
            item: epidb_common::ItemId(0),
            op: epidb_store::UpdateOp::set(&b"x"[..]),
        }];
        assert_eq!(driver.apply_updates(&updates).unwrap(), 0);
        assert!(driver.alive_converged());
        driver.revive(NodeId(2));
        assert!(driver.is_alive(NodeId(2)));
    }

    #[test]
    fn partition_blocks_propagation_until_healed() {
        let mut cluster = EpidbCluster::new(4, 10);
        let mut driver = Driver::new(&mut cluster, DriverConfig::default());
        driver.partition(&[0, 0, 1, 1]);
        let updates = vec![GeneratedUpdate {
            node: NodeId(0),
            item: epidb_common::ItemId(0),
            op: epidb_store::UpdateOp::set(&b"side-a"[..]),
        }];
        driver.apply_updates(&updates).unwrap();
        for _ in 0..20 {
            driver.round().unwrap();
        }
        // Nodes 2 and 3 cannot have the update.
        assert_eq!(driver.protocol().value(NodeId(1), epidb_common::ItemId(0)), b"side-a");
        assert_eq!(driver.protocol().value(NodeId(2), epidb_common::ItemId(0)), b"");
        assert!(!driver.alive_converged());

        driver.heal_partitions();
        assert!(driver.run_to_convergence().unwrap().is_some());
        assert_eq!(driver.protocol().value(NodeId(3), epidb_common::ItemId(0)), b"side-a");
    }

    #[test]
    fn lossy_rounds_still_converge() {
        let mut cluster = EpidbCluster::new(4, 20);
        let mut wl = Workload::new(WorkloadKind::SingleWriter, 4, 20, 8, 2);
        let updates = wl.take(40);
        let mut driver = Driver::new(
            &mut cluster,
            DriverConfig { loss_probability: 0.5, max_rounds: 2000, ..DriverConfig::default() },
        );
        driver.apply_updates(&updates).unwrap();
        assert!(driver.run_to_convergence().unwrap().is_some(), "loss must only delay");
        cluster.assert_invariants();
    }

    #[test]
    fn stale_copy_count_decreases_with_rounds() {
        let mut cluster = EpidbCluster::new(8, 40);
        let mut wl = Workload::new(WorkloadKind::SingleNode(NodeId(0)), 8, 40, 8, 5);
        let updates = wl.take(40);
        let mut driver = Driver::new(&mut cluster, DriverConfig::default());
        driver.apply_updates(&updates).unwrap();
        let s0 = driver.stale_copy_count();
        assert!(s0 > 0);
        driver.round().unwrap();
        driver.round().unwrap();
        driver.round().unwrap();
        driver.round().unwrap();
        driver.round().unwrap();
        assert!(driver.stale_copy_count() < s0);
    }
}
