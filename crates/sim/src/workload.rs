//! Workload generators.
//!
//! The paper's target regime (§2): "the fraction of data items updated on a
//! database replica between consecutive update propagations is in general
//! small", and "relatively few data items are copied out-of-bound". The
//! generators below parameterize exactly those knobs — and let experiments
//! leave the regime to see where the assumptions matter.

use epidb_common::{ItemId, NodeId};
use epidb_store::UpdateOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How updates choose their (node, item) pair.
#[derive(Clone, Copy, Debug)]
pub enum WorkloadKind {
    /// Any node updates any item — conflict-prone (optimistic replication
    /// with no tokens).
    Uniform,
    /// Item `x` is only ever updated at node `x mod n` — conflict-free, as
    /// if per-item tokens were statically partitioned (§2's pessimistic
    /// option).
    SingleWriter,
    /// All updates originate at one designated node (the dial-up /
    /// publisher scenario of the introduction).
    SingleNode(NodeId),
    /// 80/20 hotspot over a single-writer partition: `hot_fraction` of the
    /// items receive `hot_probability` of the updates.
    Hotspot {
        /// Fraction of the item universe that is hot (e.g. 0.05).
        hot_fraction: f64,
        /// Probability an update lands in the hot set (e.g. 0.8).
        hot_probability: f64,
    },
}

/// A seeded update-stream generator.
pub struct Workload {
    kind: WorkloadKind,
    n_nodes: usize,
    n_items: usize,
    value_size: usize,
    rng: StdRng,
    counter: u64,
}

/// One generated update.
#[derive(Clone, Debug)]
pub struct GeneratedUpdate {
    /// Node the user operation arrives at.
    pub node: NodeId,
    /// Item updated.
    pub item: ItemId,
    /// The operation (a full overwrite carrying a unique payload, so value
    /// equality across replicas implies update equality).
    pub op: UpdateOp,
}

impl Workload {
    /// Create a generator.
    pub fn new(
        kind: WorkloadKind,
        n_nodes: usize,
        n_items: usize,
        value_size: usize,
        seed: u64,
    ) -> Workload {
        assert!(n_nodes > 0 && n_items > 0);
        Workload {
            kind,
            n_nodes,
            n_items,
            value_size,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Generate the next update.
    pub fn next_update(&mut self) -> GeneratedUpdate {
        self.counter += 1;
        let item = self.pick_item();
        let node = self.pick_node(item);
        GeneratedUpdate { node, item, op: self.op_for(item) }
    }

    /// Generate `count` updates.
    pub fn take(&mut self, count: usize) -> Vec<GeneratedUpdate> {
        (0..count).map(|_| self.next_update()).collect()
    }

    fn pick_item(&mut self) -> ItemId {
        match self.kind {
            WorkloadKind::Hotspot { hot_fraction, hot_probability } => {
                let hot_items = ((self.n_items as f64 * hot_fraction).ceil() as usize).max(1);
                if self.rng.gen_bool(hot_probability) {
                    ItemId::from_index(self.rng.gen_range(0..hot_items))
                } else if hot_items < self.n_items {
                    ItemId::from_index(self.rng.gen_range(hot_items..self.n_items))
                } else {
                    ItemId::from_index(self.rng.gen_range(0..self.n_items))
                }
            }
            _ => ItemId::from_index(self.rng.gen_range(0..self.n_items)),
        }
    }

    fn pick_node(&mut self, item: ItemId) -> NodeId {
        match self.kind {
            WorkloadKind::Uniform => NodeId::from_index(self.rng.gen_range(0..self.n_nodes)),
            WorkloadKind::SingleWriter | WorkloadKind::Hotspot { .. } => {
                NodeId::from_index(item.index() % self.n_nodes)
            }
            WorkloadKind::SingleNode(n) => n,
        }
    }

    /// A full-overwrite op with a unique, fixed-size payload: the update
    /// counter followed by zero padding to `value_size`.
    fn op_for(&mut self, item: ItemId) -> UpdateOp {
        let mut payload = Vec::with_capacity(self.value_size.max(12));
        payload.extend_from_slice(&self.counter.to_le_bytes());
        payload.extend_from_slice(&item.0.to_le_bytes());
        if payload.len() < self.value_size {
            payload.resize(self.value_size, 0);
        }
        UpdateOp::set(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_writer_partitions_items() {
        let mut w = Workload::new(WorkloadKind::SingleWriter, 4, 100, 16, 1);
        for u in w.take(200) {
            assert_eq!(u.node.index(), u.item.index() % 4);
        }
    }

    #[test]
    fn single_node_pins_origin() {
        let mut w = Workload::new(WorkloadKind::SingleNode(NodeId(2)), 4, 10, 16, 1);
        assert!(w.take(50).iter().all(|u| u.node == NodeId(2)));
    }

    #[test]
    fn hotspot_skews_items() {
        let mut w = Workload::new(
            WorkloadKind::Hotspot { hot_fraction: 0.1, hot_probability: 0.9 },
            2,
            1000,
            16,
            42,
        );
        let updates = w.take(2000);
        let hot = updates.iter().filter(|u| u.item.index() < 100).count();
        assert!(hot > 1500, "hot fraction too low: {hot}/2000");
    }

    #[test]
    fn payloads_are_unique_and_sized() {
        let mut w = Workload::new(WorkloadKind::Uniform, 2, 10, 32, 7);
        let a = w.next_update();
        let b = w.next_update();
        assert_eq!(a.op.payload_len(), 32);
        assert_ne!(a.op, b.op);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut w1 = Workload::new(WorkloadKind::Uniform, 3, 50, 8, 9);
        let mut w2 = Workload::new(WorkloadKind::Uniform, 3, 50, 8, 9);
        for _ in 0..20 {
            let (a, b) = (w1.next_update(), w2.next_update());
            assert_eq!(a.node, b.node);
            assert_eq!(a.item, b.item);
            assert_eq!(a.op, b.op);
        }
    }
}
