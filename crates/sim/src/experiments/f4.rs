//! F4 — conflict handling: detection vs. silent loss.
//!
//! Paper claim (§8.1 and correctness criteria §2.1): the protocol detects
//! every inconsistency between replicas (criterion 1) and never lets
//! propagation destroy an update it hasn't subsumed (criterion 2). Lotus,
//! by contrast, declares the copy with the larger sequence number "newer"
//! and silently overwrites conflicting updates.
//!
//! Setup: a conflict-prone workload (any node updates any item, no tokens)
//! over a small item universe to force collisions, followed by propagation
//! rounds and quiescence sweeps. We report conflicts detected, updates
//! silently lost, and items left divergent, per protocol — including the
//! paper's protocol under both conflict policies.

use epidb_baselines::{LotusCluster, PerItemVvCluster, SyncProtocol};
use epidb_common::NodeId;
use epidb_core::ConflictPolicy;

use crate::cluster::EpidbCluster;
use crate::driver::{Driver, DriverConfig};
use crate::schedule::Schedule;
use crate::table::Table;
use crate::workload::{Workload, WorkloadKind};

/// Servers.
pub const N_NODES: usize = 4;
/// Small item universe to force conflicts.
pub const N_ITEMS: usize = 50;

struct Outcome {
    conflicts: u64,
    lost: u64,
    divergent: usize,
}

fn run_one(proto: &mut dyn SyncProtocol, rounds: usize, per_round: usize) -> Outcome {
    let mut wl = Workload::new(WorkloadKind::Uniform, N_NODES, N_ITEMS, 32, 17);
    let mut driver = Driver::new(
        proto,
        DriverConfig {
            schedule: Schedule::RandomPairwise,
            seed: 23,
            max_rounds: 500,
            ..DriverConfig::default()
        },
    );
    for _ in 0..rounds {
        let updates = wl.take(per_round);
        driver.apply_updates(&updates).expect("updates");
        driver.round().expect("round");
    }
    // Quiescence sweeps: whatever can converge, converges.
    for _ in 0..3 {
        for r in 0..N_NODES {
            for s in 0..N_NODES {
                if r != s {
                    let _ = driver.protocol().sync(NodeId::from_index(r), NodeId::from_index(s));
                }
            }
        }
    }
    let costs = driver.protocol().costs();
    Outcome {
        conflicts: costs.conflicts_detected,
        lost: costs.lost_updates,
        divergent: driver.protocol().divergent_items().len(),
    }
}

/// Run F4.
pub fn run(quick: bool) -> Table {
    let rounds = if quick { 8 } else { 20 };
    let per_round = if quick { 20 } else { 40 };
    let mut table = Table::new(
        format!(
            "F4: conflict handling under an optimistic workload (n = {N_NODES}, N = {N_ITEMS}, {} updates)",
            rounds * per_round
        ),
        "Paper §2.1/§8.1: epidb detects every inconsistency and loses nothing (Report keeps \
         divergence visible; LWW resolves it); Lotus silently destroys conflicting updates and \
         leaves equal-seqno divergence undetected.",
    )
    .headers(vec!["protocol", "conflicts detected", "updates lost", "divergent items at end"]);

    let mut epidb_report = EpidbCluster::with_policy(N_NODES, N_ITEMS, ConflictPolicy::Report);
    let o = run_one(&mut epidb_report, rounds, per_round);
    table.row(vec![
        "epidb (report)".to_string(),
        o.conflicts.to_string(),
        o.lost.to_string(),
        format!("{} (all flagged)", o.divergent),
    ]);

    let mut epidb_lww = EpidbCluster::with_policy(N_NODES, N_ITEMS, ConflictPolicy::ResolveLww);
    let o = run_one(&mut epidb_lww, rounds, per_round);
    table.row(vec![
        "epidb (lww)".to_string(),
        o.conflicts.to_string(),
        o.lost.to_string(),
        o.divergent.to_string(),
    ]);

    let mut lotus = LotusCluster::new(N_NODES, N_ITEMS);
    let o = run_one(&mut lotus, rounds, per_round);
    table.row(vec![
        "lotus".to_string(),
        o.conflicts.to_string(),
        o.lost.to_string(),
        format!("{} (silent)", o.divergent),
    ]);

    let mut pivv = PerItemVvCluster::new(N_NODES, N_ITEMS);
    let o = run_one(&mut pivv, rounds, per_round);
    table.row(vec![
        "per-item-vv".to_string(),
        o.conflicts.to_string(),
        o.lost.to_string(),
        format!("{} (all flagged)", o.divergent),
    ]);

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidb_never_loses_lotus_does() {
        let rounds = 8;
        let per_round = 20;

        let mut epidb = EpidbCluster::with_policy(N_NODES, N_ITEMS, ConflictPolicy::Report);
        let o_e = run_one(&mut epidb, rounds, per_round);
        assert_eq!(o_e.lost, 0);
        assert!(o_e.conflicts > 0, "workload failed to produce conflicts");

        let mut lotus = LotusCluster::new(N_NODES, N_ITEMS);
        let o_l = run_one(&mut lotus, rounds, per_round);
        assert_eq!(o_l.conflicts, 0, "Lotus cannot detect conflicts");
        assert!(o_l.lost > 0, "expected Lotus to silently lose updates");
    }

    #[test]
    fn lww_policy_converges_fully() {
        let mut epidb = EpidbCluster::with_policy(N_NODES, N_ITEMS, ConflictPolicy::ResolveLww);
        let o = run_one(&mut epidb, 8, 20);
        assert!(o.conflicts > 0);
        assert_eq!(o.lost, 0);
        assert_eq!(o.divergent, 0, "LWW resolution should fully converge");
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(true).rows.len(), 4);
    }
}
