//! The experiment suite: one module per table/figure in EXPERIMENTS.md.
//!
//! The paper is a protocol paper — its figures are pseudocode and a data
//! structure diagram, and it reports no measured tables. Its evaluation is
//! the analytical complexity claims of §6 plus the protocol comparisons of
//! §8. Each module below regenerates one of those claims as a measured
//! table (see DESIGN.md §4 for the index):
//!
//! * [`t1`] — anti-entropy overhead vs. database size N (O(m) vs O(N))
//! * [`t2`] — propagation overhead vs. number of changed items m
//! * [`t3`] — originator failure: Oracle push vs. epidemic forwarding
//! * [`t4`] — out-of-bound copying overhead vs. OOB fraction
//! * [`t5`] — log size bound: n·N compaction vs. per-update logs
//! * [`t6`] — bytes on the wire per propagation
//! * [`f2`] — identical-replica detection cost (the Lotus comparison)
//! * [`f3`] — epidemic convergence: rounds and total overhead
//! * [`f4`] — conflict handling: detection vs. silent loss
//! * [`f5`] — scaling with the number of servers n
//!
//! Every experiment takes a `quick` flag: `true` shrinks sizes so the whole
//! suite runs in seconds (used by tests), `false` uses the full sweeps
//! recorded in EXPERIMENTS.md.

pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t8;

use epidb_baselines::{LotusCluster, PerItemVvCluster, SyncProtocol, WuuBernsteinCluster};
use epidb_common::{ItemId, NodeId};
use epidb_store::UpdateOp;

use crate::cluster::EpidbCluster;
use crate::table::Table;

/// Build the pull-based protocol set for one configuration, paper's
/// protocol first.
pub(crate) fn pull_protocols(n_nodes: usize, n_items: usize) -> Vec<Box<dyn SyncProtocol>> {
    vec![
        Box::new(EpidbCluster::new(n_nodes, n_items)),
        Box::new(PerItemVvCluster::new(n_nodes, n_items)),
        Box::new(LotusCluster::new(n_nodes, n_items)),
        Box::new(WuuBernsteinCluster::new(n_nodes, n_items)),
    ]
}

/// Apply `m` updates at `node`, each to a distinct item (items `0..m`),
/// `updates_per_item` times each, with `value_size`-byte payloads.
pub(crate) fn apply_distinct_updates(
    proto: &mut dyn SyncProtocol,
    node: NodeId,
    m: usize,
    updates_per_item: usize,
    value_size: usize,
) {
    assert!(m <= proto.n_items());
    for round in 0..updates_per_item {
        for i in 0..m {
            let mut payload = vec![0u8; value_size.max(8)];
            payload[..4].copy_from_slice(&(i as u32).to_le_bytes());
            payload[4..8].copy_from_slice(&(round as u32).to_le_bytes());
            proto.update(node, ItemId::from_index(i), UpdateOp::set(payload)).expect("update");
        }
    }
}

/// Run every experiment and return the tables in presentation order.
pub fn all_tables(quick: bool) -> Vec<Table> {
    vec![
        t1::run(quick),
        t2::run(quick),
        t3::run(quick),
        t4::run(quick),
        t5::run(quick),
        t6::run(quick),
        f2::run(quick),
        f3::run_rounds(quick),
        f3::run_staleness(quick),
        f4::run(quick),
        f5::run(quick),
        f6::run(quick),
        t8::run(quick),
    ]
}
