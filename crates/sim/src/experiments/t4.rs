//! T4 — the price of out-of-bound copying.
//!
//! Paper claim (§6): out-of-bound copying itself is constant-time, but the
//! auxiliary machinery costs storage (auxiliary copies + re-doable
//! auxiliary log records) and background intra-node replay work — which is
//! acceptable *provided few items are copied out-of-bound* (§2's workload
//! assumption). This experiment sweeps the number of hot (OOB-fetched)
//! items and reports the auxiliary storage peak, the replay work, and the
//! end-to-end overhead, so the assumption's limits are visible.
//!
//! Setup: n = 4 servers; every round, each hot item is updated at its
//! owner and immediately OOB-fetched by one other node; `BG` background
//! items are updated normally; then one random-pairwise propagation round
//! runs. After `ROUNDS` rounds, updates stop and propagation drains all
//! auxiliary state.

use epidb_baselines::SyncProtocol;
use epidb_common::{ItemId, NodeId};
use epidb_store::UpdateOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::EpidbCluster;
use crate::schedule::Schedule;
use crate::table::{fmt_count, Table};

/// Servers.
pub const N_NODES: usize = 4;
/// Background (non-OOB) items updated per round.
pub const BG: usize = 100;
/// Mixed-activity rounds.
pub const ROUNDS: usize = 5;

/// Hot-item counts swept.
pub fn hot_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![0, 8, 64]
    } else {
        vec![0, 20, 200, 2_000]
    }
}

/// Database size.
pub fn n_items(quick: bool) -> usize {
    if quick {
        4_000
    } else {
        20_000
    }
}

struct Outcome {
    aux_peak: usize,
    aux_bytes_peak: usize,
    replays: u64,
    work: u64,
    drain_rounds: usize,
}

fn run_one(hot: usize, n_items: usize, seed: u64) -> Outcome {
    let mut cluster = EpidbCluster::new(N_NODES, n_items);
    let mut rng = StdRng::seed_from_u64(seed);
    let schedule = Schedule::RandomPairwise;
    let alive = vec![true; N_NODES];
    let mut aux_peak = 0;
    let mut aux_bytes_peak = 0;

    // Hot items occupy ids [BG, BG + hot); background items [0, BG). Each
    // hot item is a "migrating" document: every round its current writer
    // edits it, another node urgently fetches it out-of-bound, edits it in
    // turn, and becomes the next writer — a single logical writer chain, so
    // the run is conflict-free (the pessimistic-token usage pattern of §2).
    let mut writer: Vec<NodeId> =
        (0..hot).map(|h| NodeId::from_index((BG + h) % N_NODES)).collect();
    for round in 0..ROUNDS {
        for b in 0..BG {
            let x = ItemId::from_index(b);
            let owner = NodeId::from_index(b % N_NODES);
            cluster.update(owner, x, UpdateOp::set(vec![round as u8; 64])).expect("update");
        }
        for (h, current_writer) in writer.iter_mut().enumerate() {
            let x = ItemId::from_index(BG + h);
            let owner = *current_writer;
            cluster.update(owner, x, UpdateOp::set(vec![round as u8; 64])).expect("update");
            // Another node urgently needs the newest version now, fetches
            // it out-of-bound, edits it, and takes over as writer.
            let mut r = rng.gen_range(0..N_NODES);
            if r == owner.index() {
                r = (r + 1) % N_NODES;
            }
            let next = NodeId::from_index(r);
            cluster.oob(next, owner, x).expect("oob");
            cluster.update(next, x, UpdateOp::append(vec![round as u8, h as u8])).expect("update");
            *current_writer = next;
        }
        aux_peak = aux_peak.max(cluster.aux_items_total());
        aux_bytes_peak = aux_bytes_peak.max(cluster.aux_log_bytes());
        for (r, s) in schedule.round(N_NODES, &alive, &mut rng) {
            cluster.pull_pair(r, s).expect("pull");
        }
    }

    // Drain: propagation only, until all auxiliary state is reabsorbed.
    let mut drain_rounds = 0;
    while !cluster.fully_converged() && drain_rounds < 200 {
        drain_rounds += 1;
        for (r, s) in schedule.round(N_NODES, &alive, &mut rng) {
            cluster.pull_pair(r, s).expect("pull");
        }
    }
    cluster.assert_invariants();
    assert!(cluster.fully_converged(), "aux state failed to drain (hot = {hot})");

    let costs = cluster.costs();
    Outcome {
        aux_peak,
        aux_bytes_peak,
        replays: costs.aux_replays,
        work: costs.comparison_work(),
        drain_rounds,
    }
}

/// Run T4.
pub fn run(quick: bool) -> Table {
    let n = n_items(quick);
    let mut table = Table::new(
        format!("T4: out-of-bound copying overhead (N = {n}, n = {N_NODES}, {BG} background updates/round)"),
        "Paper §6: auxiliary storage and intra-node replay grow with the number of out-of-bound \
         items; the protocol stays cheap while that number is small (the §2 workload assumption).",
    )
    .headers(vec![
        "hot items",
        "oob fraction",
        "aux peak",
        "aux log B peak",
        "replays",
        "total work",
        "drain rounds",
    ]);
    for hot in hot_counts(quick) {
        let o = run_one(hot, n, 7);
        table.row(vec![
            hot.to_string(),
            format!("{:.2}%", 100.0 * hot as f64 / n as f64),
            o.aux_peak.to_string(),
            fmt_count(o.aux_bytes_peak as u64),
            fmt_count(o.replays),
            fmt_count(o.work),
            o.drain_rounds.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_state_drains_and_costs_scale_with_hot_set() {
        let base = run_one(0, 2_000, 7);
        let hot = run_one(32, 2_000, 7);
        assert_eq!(base.aux_peak, 0);
        assert_eq!(base.replays, 0);
        assert!(hot.aux_peak > 0);
        assert!(hot.replays > 0);
        assert!(hot.work > base.work);
        // Everything drains in both cases (asserted inside run_one).
    }

    #[test]
    fn table_renders() {
        let t = run(true);
        assert_eq!(t.rows.len(), hot_counts(true).len());
    }
}
