//! T1 — anti-entropy overhead vs. database size N.
//!
//! Paper claim (§6, §8): the protocol's propagation overhead is linear in
//! the number of items actually copied (m), *independent of N*, while
//! per-item anti-entropy and Lotus pay at least O(N) per round.
//!
//! Setup: node 0 applies updates to `m` distinct items in an N-item
//! database (n = 4 servers); node 1 then performs one anti-entropy pull
//! from node 0. We report the comparison work (vv entry comparisons + log
//! records examined + item scans) and the bytes shipped, per protocol, as
//! N sweeps with m fixed.

use epidb_common::NodeId;

use crate::table::{fmt_count, Table};

use super::{apply_distinct_updates, pull_protocols};

/// Fixed number of changed items.
pub const M: usize = 100;
/// Servers.
pub const N_NODES: usize = 4;

/// Database sizes swept.
pub fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000, 500_000]
    }
}

/// Run T1.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "T1: anti-entropy overhead vs database size N (m = 100 changed items, n = 4)",
        "Paper §6/§8: epidb's per-sync work stays O(m) while per-item VV and Lotus grow O(N); \
         Wuu-Bernstein scales with outstanding updates.",
    )
    .headers(vec![
        "N",
        "protocol",
        "cmp work",
        "scans",
        "vv cmps",
        "log recs",
        "copied",
        "ctl bytes",
        "payload B",
    ]);

    for n_items in sizes(quick) {
        for mut proto in pull_protocols(N_NODES, n_items) {
            apply_distinct_updates(proto.as_mut(), NodeId(0), M, 1, 64);
            let before = proto.costs();
            let report = proto.sync(NodeId(1), NodeId(0)).expect("sync");
            let d = proto.costs() - before;
            assert_eq!(report.items_copied, M, "{}: wrong copy count", proto.name());
            table.row(vec![
                fmt_count(n_items as u64),
                proto.name().to_string(),
                fmt_count(d.comparison_work()),
                fmt_count(d.items_scanned),
                fmt_count(d.vv_entry_cmps),
                fmt_count(d.log_records_examined),
                d.items_copied.to_string(),
                fmt_count(d.control_bytes),
                fmt_count(d.bytes_sent - d.control_bytes),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quantitative shape the experiment must reproduce: epidb's work
    /// is flat in N; per-item VV and Lotus grow linearly.
    #[test]
    fn epidb_flat_baselines_linear() {
        let work = |n_items: usize| -> Vec<(String, u64)> {
            pull_protocols(N_NODES, n_items)
                .into_iter()
                .map(|mut p| {
                    apply_distinct_updates(p.as_mut(), NodeId(0), M, 1, 16);
                    let before = p.costs();
                    p.sync(NodeId(1), NodeId(0)).unwrap();
                    (p.name().to_string(), (p.costs() - before).comparison_work())
                })
                .collect()
        };
        let small = work(1_000);
        let large = work(16_000);
        let get = |v: &[(String, u64)], name: &str| {
            v.iter().find(|(n, _)| n == name).map(|(_, w)| *w).unwrap()
        };
        // epidb: identical work at both sizes.
        assert_eq!(get(&small, "epidb"), get(&large, "epidb"));
        // per-item VV: ~16x work.
        let ratio = get(&large, "per-item-vv") as f64 / get(&small, "per-item-vv") as f64;
        assert!(ratio > 12.0, "per-item-vv ratio {ratio}");
        // Lotus: grows with N too (full scan at the source).
        let ratio = get(&large, "lotus") as f64 / get(&small, "lotus") as f64;
        assert!(ratio > 8.0, "lotus ratio {ratio}");
    }

    #[test]
    fn table_renders_all_rows() {
        let t = run(true);
        assert_eq!(t.rows.len(), sizes(true).len() * 4);
    }
}
