//! T3 — originator failure during propagation.
//!
//! Paper claim (§8.2): Oracle Symmetric Replication ships updates from the
//! originator to all peers with **no forwarding**, so if the originator
//! fails after reaching only some peers, the rest stay obsolete until it
//! recovers. The epidemic protocol forwards: the survivors that received
//! the data propagate it onward, and the system converges without the
//! originator.
//!
//! Setup: n = 8 servers, node 0 applies updates to `M` items and begins
//! propagation; it reaches exactly `REACHED` peers, then crashes. We then
//! run propagation rounds among the survivors and report the number of
//! stale item copies after each round.

use epidb_baselines::{OracleCluster, SyncProtocol};
use epidb_common::{ItemId, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cluster::EpidbCluster;
use crate::driver::{Driver, DriverConfig};
use crate::schedule::Schedule;
use crate::table::Table;

use super::apply_distinct_updates;

/// Servers.
pub const N_NODES: usize = 8;
/// Items updated by the originator.
pub const M: usize = 50;
/// Peers the originator reaches before crashing.
pub const REACHED: usize = 3;

/// Count alive nodes still missing the originator's data.
fn stale_nodes(proto: &dyn SyncProtocol, alive: &[bool]) -> usize {
    let reference = proto.value(NodeId(1), ItemId(0)); // node 1 was reached
    assert!(!reference.is_empty());
    NodeId::all(proto.n_nodes())
        .filter(|node| alive[node.index()] && proto.value(*node, ItemId(0)) != reference)
        .count()
}

/// Run T3.
pub fn run(quick: bool) -> Table {
    let rounds = if quick { 6 } else { 12 };
    let n_items = if quick { 500 } else { 2_000 };
    let mut table = Table::new(
        format!(
            "T3: originator fails after reaching {REACHED} of {} peers (n = {N_NODES}, m = {M})",
            N_NODES - 1
        ),
        "Paper §8.2: with no forwarding (Oracle) the unreached nodes stay obsolete until the \
         originator recovers; the epidemic protocol forwards and converges among survivors.",
    )
    .headers(vec!["round", "oracle stale nodes", "epidb stale nodes"]);

    // --- Oracle: originator pushes to REACHED peers, then crashes. ---
    let mut oracle = OracleCluster::new(N_NODES, n_items);
    apply_distinct_updates(&mut oracle, NodeId(0), M, 1, 64);
    for d in 1..=REACHED {
        oracle.push_to(NodeId(0), NodeId::from_index(d)).expect("push");
    }
    let mut alive = vec![true; N_NODES];
    alive[0] = false; // crash

    // --- epidb: the same REACHED peers pull from node 0, then it crashes.
    let mut epidb = EpidbCluster::new(N_NODES, n_items);
    apply_distinct_updates(&mut epidb, NodeId(0), M, 1, 64);
    for d in 1..=REACHED {
        epidb.pull_pair(NodeId::from_index(d), NodeId(0)).expect("pull");
    }
    let mut driver = Driver::new(
        &mut epidb,
        DriverConfig {
            schedule: Schedule::RandomPairwise,
            seed: 42,
            max_rounds: 1000,
            ..DriverConfig::default()
        },
    );
    driver.crash(NodeId(0));

    let mut rng = StdRng::seed_from_u64(42);
    let mut rows: Vec<(usize, usize, usize)> = Vec::new();
    rows.push((0, stale_nodes(&oracle, &alive), {
        let p: &EpidbCluster = driver.protocol();
        stale_nodes(p, &alive)
    }));
    for round in 1..=rounds {
        // Oracle survivors push whatever they originated (nothing relevant)
        // — no forwarding is possible.
        for origin in 1..N_NODES {
            let _ = oracle.push(NodeId::from_index(origin), &alive);
        }
        let _ = &mut rng;
        // Epidemic survivors keep anti-entropy going.
        driver.round().expect("round");
        let epidb_stale = stale_nodes(driver.protocol(), &alive);
        rows.push((round, stale_nodes(&oracle, &alive), epidb_stale));
    }

    for (round, o, e) in rows {
        table.row(vec![round.to_string(), o.to_string(), e.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_stays_stale_epidb_converges() {
        let t = run(true);
        let last = t.rows.last().unwrap();
        let oracle_stale: usize = last[1].parse().unwrap();
        let epidb_stale: usize = last[2].parse().unwrap();
        // Oracle: the 4 unreached survivors remain stale forever.
        assert_eq!(oracle_stale, N_NODES - 1 - REACHED);
        // Epidemic forwarding: everyone alive caught up.
        assert_eq!(epidb_stale, 0);
        // And both started equally stale.
        let first = &t.rows[0];
        assert_eq!(first[1], first[2]);
    }
}
