//! F3 — epidemic convergence: rounds to converge and total overhead.
//!
//! Paper context (§1, §7): epidemic protocols converge in O(log n) random
//! pairwise rounds; the paper's contribution is not faster convergence but
//! *cheaper rounds*. This experiment shows both: all pull protocols
//! converge in essentially the same number of rounds, while the total
//! comparison work to reach convergence differs by orders of magnitude —
//! and it also produces the staleness-vs-round series.

use crate::driver::{Driver, DriverConfig};
use crate::schedule::Schedule;
use crate::table::{fmt_count, Table};
use crate::workload::{Workload, WorkloadKind};

use super::pull_protocols;

/// Updates applied before propagation starts.
pub const UPDATES: usize = 200;

/// Node counts swept.
pub fn node_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![4, 8]
    } else {
        vec![4, 8, 16, 32]
    }
}

/// Database size.
pub fn n_items(quick: bool) -> usize {
    if quick {
        500
    } else {
        2_000
    }
}

/// F3a: rounds to convergence and total work, per protocol and n.
pub fn run_rounds(quick: bool) -> Table {
    let n_items = n_items(quick);
    let mut table = Table::new(
        format!("F3a: random-pairwise convergence (N = {n_items}, {UPDATES} updates)"),
        "All pull protocols converge in ~O(log n) rounds; the paper's protocol makes each round \
         cheap. 'total work' is comparison work summed until convergence.",
    )
    .headers(vec!["n", "protocol", "rounds", "total work", "total bytes"]);

    for n in node_counts(quick) {
        for mut proto in pull_protocols(n, n_items) {
            let mut wl = Workload::new(WorkloadKind::SingleWriter, n, n_items, 64, 11);
            let updates = wl.take(UPDATES);
            let mut driver = Driver::new(
                proto.as_mut(),
                DriverConfig {
                    schedule: Schedule::RandomPairwise,
                    seed: 21,
                    max_rounds: 500,
                    ..DriverConfig::default()
                },
            );
            driver.apply_updates(&updates).expect("updates");
            let rounds = driver.run_to_convergence().expect("run").expect("converged");
            let costs = proto.costs();
            table.row(vec![
                n.to_string(),
                proto.name().to_string(),
                rounds.to_string(),
                fmt_count(costs.comparison_work()),
                fmt_count(costs.bytes_sent),
            ]);
        }
    }
    table
}

/// F3b: stale replica copies after each round (n = 16, all protocols).
pub fn run_staleness(quick: bool) -> Table {
    let n = if quick { 8 } else { 16 };
    let n_items = n_items(quick);
    let mut table = Table::new(
        format!("F3b: stale item copies vs round (n = {n}, N = {n_items}, {UPDATES} updates)"),
        "The epidemic die-down: the number of obsolete item copies per round, per protocol.",
    )
    .headers(vec!["round", "epidb", "per-item-vv", "lotus", "wuu-bernstein"]);

    let mut series: Vec<Vec<usize>> = Vec::new();
    for mut proto in pull_protocols(n, n_items) {
        let mut wl = Workload::new(WorkloadKind::SingleWriter, n, n_items, 64, 11);
        let updates = wl.take(UPDATES);
        let mut driver = Driver::new(
            proto.as_mut(),
            DriverConfig {
                schedule: Schedule::RandomPairwise,
                seed: 21,
                max_rounds: 100,
                ..DriverConfig::default()
            },
        );
        driver.apply_updates(&updates).expect("updates");
        let mut stale = vec![driver.stale_copy_count()];
        for _ in 0..(if quick { 6 } else { 10 }) {
            driver.round().expect("round");
            stale.push(driver.stale_copy_count());
        }
        series.push(stale);
    }
    for r in 0..series[0].len() {
        let mut row = vec![r.to_string()];
        row.extend(series.iter().map(|s| s[r].to_string()));
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_converge_with_comparable_rounds_but_different_work() {
        let t = run_rounds(true);
        // Extract epidb vs per-item-vv at the largest n.
        let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "8").collect();
        let find = |name: &str| rows.iter().find(|r| r[1] == name).unwrap();
        let epidb_rounds: usize = find("epidb")[2].parse().unwrap();
        let pivv_rounds: usize = find("per-item-vv")[2].parse().unwrap();
        // Same epidemic dynamics: rounds within a small factor.
        assert!(epidb_rounds <= pivv_rounds * 3 + 3);
        assert!(pivv_rounds <= epidb_rounds * 3 + 3);
    }

    #[test]
    fn staleness_is_monotonically_cleared_for_epidb() {
        let t = run_staleness(true);
        let first: usize = t.rows.first().unwrap()[1].parse().unwrap();
        let last: usize = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(first > 0);
        assert_eq!(last, 0, "epidb did not drain staleness: {t}");
    }
}
