//! F2 — detecting identical replicas after *indirect* propagation.
//!
//! Paper claim (§8.1): the protocol "always recognizes that two database
//! replicas are identical in constant time, by simply comparing their
//! DBVVs" — even when both replicas changed since they last talked to each
//! other. Lotus's fast path only works if the source is unmodified since
//! the last *direct* propagation, so after indirect propagation it pays a
//! full O(N) scan (and ships a useless list); per-item VV anti-entropy
//! always pays O(N·n).
//!
//! Setup: node 0 applies m updates; nodes 1 and 2 each pull from node 0
//! (indirect propagation makes them identical); then node 1 pulls from
//! node 2 and we measure the cost of discovering there is nothing to do.

use epidb_common::NodeId;

use crate::table::{fmt_count, Table};

use super::{apply_distinct_updates, pull_protocols};

/// Servers.
pub const N_NODES: usize = 3;
/// Items updated at the origin.
pub const M: usize = 50;

/// Database sizes swept.
pub fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000, 500_000]
    }
}

/// Run F2.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        format!("F2: cost of syncing identical replicas after indirect propagation (m = {M}, n = {N_NODES})"),
        "Paper §8.1: epidb detects identical replicas in O(n) via one DBVV comparison; Lotus \
         re-scans all N items because its per-destination fast path is defeated by indirect \
         propagation; per-item VV always compares all N IVVs.",
    )
    .headers(vec!["N", "protocol", "cmp work", "scans", "bytes", "copied"]);

    for n_items in sizes(quick) {
        for mut proto in pull_protocols(N_NODES, n_items) {
            apply_distinct_updates(proto.as_mut(), NodeId(0), M, 1, 64);
            proto.sync(NodeId(1), NodeId(0)).expect("sync");
            proto.sync(NodeId(2), NodeId(0)).expect("sync");
            debug_assert!(proto.converged());

            // The measured exchange: node 1 <- node 2, identical replicas.
            let before = proto.costs();
            let report = proto.sync(NodeId(1), NodeId(2)).expect("sync");
            let d = proto.costs() - before;
            assert_eq!(
                report.items_copied,
                0,
                "{}: copied from an identical replica",
                proto.name()
            );
            table.row(vec![
                fmt_count(n_items as u64),
                proto.name().to_string(),
                fmt_count(d.comparison_work()),
                fmt_count(d.items_scanned),
                fmt_count(d.bytes_sent),
                d.items_copied.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidb_constant_lotus_linear() {
        let measure = |n_items: usize| -> Vec<(String, u64)> {
            pull_protocols(N_NODES, n_items)
                .into_iter()
                .map(|mut p| {
                    apply_distinct_updates(p.as_mut(), NodeId(0), M, 1, 16);
                    p.sync(NodeId(1), NodeId(0)).unwrap();
                    p.sync(NodeId(2), NodeId(0)).unwrap();
                    let before = p.costs();
                    p.sync(NodeId(1), NodeId(2)).unwrap();
                    (p.name().to_string(), (p.costs() - before).comparison_work())
                })
                .collect()
        };
        let small = measure(1_000);
        let large = measure(16_000);
        let get = |v: &[(String, u64)], name: &str| {
            v.iter().find(|(n, _)| n == name).map(|(_, w)| *w).unwrap()
        };
        // epidb: exactly one DBVV comparison (n entries), size-independent.
        assert_eq!(get(&small, "epidb"), N_NODES as u64);
        assert_eq!(get(&large, "epidb"), N_NODES as u64);
        // Lotus: the indirect-propagation trap — full scan.
        assert!(get(&large, "lotus") >= 16_000);
        // per-item VV: N IVV comparisons.
        assert!(get(&large, "per-item-vv") >= 16_000);
    }

    #[test]
    fn epidb_ships_zero_payload_between_identical_replicas() {
        let mut protos = pull_protocols(N_NODES, 5_000);
        let p = &mut protos[0];
        apply_distinct_updates(p.as_mut(), NodeId(0), M, 1, 64);
        p.sync(NodeId(1), NodeId(0)).unwrap();
        p.sync(NodeId(2), NodeId(0)).unwrap();
        let before = p.costs();
        p.sync(NodeId(1), NodeId(2)).unwrap();
        let d = p.costs() - before;
        assert_eq!(d.bytes_sent - d.control_bytes, 0);
        // Just the DBVV request + the constant-size reply.
        assert_eq!(d.messages_sent, 2);
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(true).rows.len(), sizes(true).len() * 4);
    }
}
