//! T2 — propagation overhead vs. number of changed items m.
//!
//! Paper claim (§6): when propagation is required, it completes in time
//! linear in m (the items to be copied), examining only a constant number
//! of log records per copied item — even when each item was updated many
//! times (the log vector retains only the latest record per item, §4.2).
//!
//! Setup: N fixed; node 0 updates m distinct items, 3 times each; node 1
//! pulls once. epidb's work grows with m and is insensitive to the repeat
//! count, while Wuu-Bernstein's grows with the raw update count.

use epidb_common::NodeId;

use crate::table::{fmt_count, Table};

use super::{apply_distinct_updates, pull_protocols};

/// Updates applied per changed item (stresses log compaction).
pub const UPDATES_PER_ITEM: usize = 3;
/// Servers.
pub const N_NODES: usize = 4;

/// Database size.
pub fn n_items(quick: bool) -> usize {
    if quick {
        20_000
    } else {
        100_000
    }
}

/// Changed-item counts swept.
pub fn ms(quick: bool) -> Vec<usize> {
    if quick {
        vec![10, 100, 1_000]
    } else {
        vec![10, 100, 1_000, 10_000]
    }
}

/// Run T2.
pub fn run(quick: bool) -> Table {
    let n = n_items(quick);
    let mut table = Table::new(
        format!("T2: propagation overhead vs changed items m (N = {n}, 3 updates/item, n = 4)"),
        "Paper §6: epidb's work is O(m) and insensitive to updates-per-item; Wuu-Bernstein \
         ships every update record (3m).",
    )
    .headers(vec!["m", "protocol", "cmp work", "log recs", "copied", "ctl bytes", "payload B"]);

    for m in ms(quick) {
        for mut proto in pull_protocols(N_NODES, n) {
            apply_distinct_updates(proto.as_mut(), NodeId(0), m, UPDATES_PER_ITEM, 64);
            let before = proto.costs();
            let report = proto.sync(NodeId(1), NodeId(0)).expect("sync");
            let d = proto.costs() - before;
            assert!(report.items_copied <= m * UPDATES_PER_ITEM);
            table.row(vec![
                fmt_count(m as u64),
                proto.name().to_string(),
                fmt_count(d.comparison_work()),
                fmt_count(d.log_records_examined),
                fmt_count(d.items_copied),
                fmt_count(d.control_bytes),
                fmt_count(d.bytes_sent - d.control_bytes),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidb_work_linear_in_m_not_updates() {
        let measure = |m: usize, per_item: usize| -> (u64, u64) {
            let mut protos = pull_protocols(N_NODES, 20_000);
            let p = &mut protos[0];
            assert_eq!(p.name(), "epidb");
            apply_distinct_updates(p.as_mut(), NodeId(0), m, per_item, 16);
            let before = p.costs();
            p.sync(NodeId(1), NodeId(0)).unwrap();
            let d = p.costs() - before;
            (d.comparison_work(), d.items_copied)
        };
        let (w100, c100) = measure(100, 1);
        let (w100x5, c100x5) = measure(100, 5);
        let (w1000, _) = measure(1_000, 1);
        // Same m, 5x the updates: same items copied, nearly same work.
        assert_eq!(c100, c100x5);
        assert!(w100x5 <= w100 + 16, "compaction failed: {w100} -> {w100x5}");
        // 10x the items: roughly 10x the work.
        let ratio = w1000 as f64 / w100 as f64;
        assert!((6.0..14.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wuu_bernstein_pays_per_update() {
        let mut protos = pull_protocols(N_NODES, 20_000);
        let p = &mut protos[3];
        assert_eq!(p.name(), "wuu-bernstein");
        apply_distinct_updates(p.as_mut(), NodeId(0), 100, 5, 16);
        let before = p.costs();
        p.sync(NodeId(1), NodeId(0)).unwrap();
        let d = p.costs() - before;
        // 500 raw update records scanned, not 100.
        assert!(d.log_records_examined >= 500);
    }

    #[test]
    fn table_renders() {
        let t = run(true);
        assert_eq!(t.rows.len(), ms(true).len() * 4);
    }
}
