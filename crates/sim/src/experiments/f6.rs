//! F6 — timeliness under a fixed overhead budget.
//!
//! Paper claim (§8, Related Work): as the number of items grows, existing
//! systems "must either schedule anti-entropy less frequently, or increase
//! the granularity of the data" — the first "causes update propagation to
//! be less timely and increases the chance that an update will arrive at
//! an obsolete replica". The paper's protocol makes rounds cheap, so at
//! the *same* overhead budget it can run anti-entropy far more often and
//! keep replicas far fresher.
//!
//! Setup: a continuous single-writer workload (updates every round). Every
//! protocol receives the same comparison-work allowance per round (a
//! multiple of epidb's typical round cost) and runs an anti-entropy round
//! whenever its cumulative work is within its accumulated allowance —
//! i.e., frequency is cost-limited, as it is in production. We report how
//! many rounds each protocol could afford and the staleness that resulted.

use epidb_baselines::SyncProtocol;

use crate::driver::{Driver, DriverConfig};
use crate::schedule::Schedule;
use crate::table::{fmt_count, Table};
use crate::workload::{Workload, WorkloadKind};

use super::pull_protocols;

/// Servers.
pub const N_NODES: usize = 8;
/// Updates applied per round.
pub const UPDATES_PER_ROUND: usize = 40;

/// Database size.
pub fn n_items(quick: bool) -> usize {
    if quick {
        1_000
    } else {
        10_000
    }
}

/// Simulated rounds.
pub fn rounds(quick: bool) -> usize {
    if quick {
        40
    } else {
        120
    }
}

/// Staleness is sampled every this many rounds (counting all copies is
/// itself O(N*n) and must not dominate the simulation).
pub fn sample_every(quick: bool) -> usize {
    if quick {
        2
    } else {
        4
    }
}

struct Outcome {
    sync_rounds: usize,
    total_work: u64,
    avg_stale: f64,
    max_stale: usize,
}

fn run_one(proto: &mut dyn SyncProtocol, budget_per_round: u64, quick: bool) -> Outcome {
    let n_items = n_items(quick);
    let total_rounds = rounds(quick);
    let mut wl = Workload::new(WorkloadKind::SingleWriter, N_NODES, n_items, 32, 19);
    let mut driver = Driver::new(
        proto,
        DriverConfig {
            schedule: Schedule::RandomPairwise,
            seed: 3,
            max_rounds: 10 * total_rounds,
            ..DriverConfig::default()
        },
    );

    let mut sync_rounds = 0;
    let mut stale_sum = 0usize;
    let mut stale_samples = 0usize;
    let mut max_stale = 0usize;
    let mut allowance: i64 = 0;
    let budget = i64::try_from(budget_per_round).unwrap_or(i64::MAX);
    let sample_every = sample_every(quick);

    for round in 0..total_rounds {
        let updates = wl.take(UPDATES_PER_ROUND);
        driver.apply_updates(&updates).expect("updates");
        allowance = allowance.saturating_add(budget);

        // Run anti-entropy only if the accumulated allowance covers it.
        let before = driver.protocol().costs().comparison_work();
        if allowance > 0 {
            driver.round().expect("round");
            sync_rounds += 1;
            let spent = driver.protocol().costs().comparison_work() - before;
            allowance = allowance.saturating_sub(i64::try_from(spent).unwrap_or(i64::MAX));
        }

        if round % sample_every == 0 {
            let stale = driver.stale_copy_count();
            stale_sum += stale;
            stale_samples += 1;
            max_stale = max_stale.max(stale);
        }
    }

    Outcome {
        sync_rounds,
        total_work: driver.protocol().costs().comparison_work(),
        avg_stale: stale_sum as f64 / stale_samples.max(1) as f64,
        max_stale,
    }
}

/// Run F6.
pub fn run(quick: bool) -> Table {
    let n = n_items(quick);
    let total_rounds = rounds(quick);

    // Calibrate the budget: epidb's typical cost for one random-pairwise
    // round under this workload, with headroom so epidb syncs every round.
    let mut calib = pull_protocols(N_NODES, n);
    let epidb_round_cost = {
        let p = &mut calib[0];
        let o = run_one(p.as_mut(), u64::MAX / 2, quick);
        (o.total_work / o.sync_rounds as u64).max(1)
    };
    let budget = epidb_round_cost * 2;

    let mut table = Table::new(
        format!(
            "F6: staleness at a fixed work budget ({budget}/round, N = {n}, n = {N_NODES}, {UPDATES_PER_ROUND} updates/round, {total_rounds} rounds)"
        ),
        "Paper §8: expensive rounds force rarer anti-entropy and stale replicas; epidb's cheap \
         rounds keep replicas fresh at the same budget.",
    )
    .headers(vec![
        "protocol",
        "sync rounds afforded",
        "total work",
        "avg stale copies",
        "max stale copies",
    ]);

    for mut proto in pull_protocols(N_NODES, n) {
        let name = proto.name().to_string();
        let o = run_one(proto.as_mut(), budget, quick);
        table.row(vec![
            name,
            format!("{}/{total_rounds}", o.sync_rounds),
            fmt_count(o.total_work),
            format!("{:.1}", o.avg_stale),
            fmt_count(o.max_stale as u64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidb_syncs_more_often_and_stays_fresher_than_per_item_vv() {
        let quick = true;
        let n = n_items(quick);
        let mut calib = pull_protocols(N_NODES, n);
        let epidb_cost = {
            let o = run_one(calib[0].as_mut(), u64::MAX / 2, quick);
            (o.total_work / o.sync_rounds as u64).max(1)
        };
        let budget = epidb_cost * 2;

        let mut protos = pull_protocols(N_NODES, n);
        let epidb = run_one(protos[0].as_mut(), budget, quick);
        let pivv = run_one(protos[1].as_mut(), budget, quick);

        assert!(
            epidb.sync_rounds >= pivv.sync_rounds * 5,
            "epidb {} rounds vs per-item-vv {}",
            epidb.sync_rounds,
            pivv.sync_rounds
        );
        assert!(
            epidb.avg_stale * 2.0 < pivv.avg_stale,
            "epidb avg stale {} vs per-item-vv {}",
            epidb.avg_stale,
            pivv.avg_stale
        );
        assert!(epidb.max_stale <= pivv.max_stale);
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(true).rows.len(), 4);
    }
}
