//! T5 — log size: the n·N bound vs. per-update logs.
//!
//! Paper claim (§4.2): because each log component retains only the latest
//! record per data item, the whole log vector holds at most n·N records —
//! *regardless of how many updates occurred*. Log-based gossip
//! (Wuu–Bernstein) retains one record per update until every node is known
//! to have received it, so its log grows with update volume whenever any
//! node lags.
//!
//! Setup: n = 4 servers, N items; node 0 applies U hotspot-distributed
//! updates while node 3 stays unreachable (no sync touches it), then node 1
//! syncs from node 0 once. We report the records retained at nodes 0 and 1
//! for both protocols, against the paper's bound.

use epidb_baselines::{SyncProtocol, WuuBernsteinCluster};
use epidb_common::{ItemId, NodeId};
use epidb_store::UpdateOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::EpidbCluster;
use crate::table::{fmt_count, Table};

/// Servers.
pub const N_NODES: usize = 4;

/// Database size.
pub fn n_items(quick: bool) -> usize {
    if quick {
        1_000
    } else {
        5_000
    }
}

/// Update volumes swept.
pub fn volumes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    }
}

/// Hotspot item choice: 80% of updates to 5% of items.
fn pick_item(rng: &mut StdRng, n: usize) -> ItemId {
    let hot = (n / 20).max(1);
    if rng.gen_bool(0.8) {
        ItemId::from_index(rng.gen_range(0..hot))
    } else {
        ItemId::from_index(rng.gen_range(0..n))
    }
}

/// Run T5.
pub fn run(quick: bool) -> Table {
    let n = n_items(quick);
    let mut table = Table::new(
        format!("T5: retained log records vs update volume U (N = {n}, n = {N_NODES}, one node lagging)"),
        "Paper §4.2: the log vector is bounded by n*N records no matter how many updates occur; \
         an uncompacted per-update log grows with U while any node lags.",
    )
    .headers(vec![
        "U",
        "epidb recs @origin",
        "epidb recs @peer",
        "epidb bound (n*N)",
        "wuu-b recs @origin",
        "wuu-b recs @peer",
    ]);

    for u in volumes(quick) {
        let mut epidb = EpidbCluster::new(N_NODES, n);
        let mut wb = WuuBernsteinCluster::new(N_NODES, n);
        let mut rng = StdRng::seed_from_u64(13);
        for k in 0..u {
            let x = pick_item(&mut rng, n);
            let op = UpdateOp::set((k as u64).to_le_bytes().to_vec());
            epidb.update(NodeId(0), x, op.clone()).expect("update");
            wb.update(NodeId(0), x, op).expect("update");
        }
        epidb.sync(NodeId(1), NodeId(0)).expect("sync");
        wb.sync(NodeId(1), NodeId(0)).expect("sync");

        table.row(vec![
            fmt_count(u as u64),
            fmt_count(epidb.replica(NodeId(0)).log().total_len() as u64),
            fmt_count(epidb.replica(NodeId(1)).log().total_len() as u64),
            fmt_count((N_NODES * n) as u64),
            fmt_count(wb.log_len(NodeId(0)) as u64),
            fmt_count(wb.log_len(NodeId(1)) as u64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidb_log_bounded_wuu_grows() {
        let n = 500;
        let mut epidb = EpidbCluster::new(N_NODES, n);
        let mut wb = WuuBernsteinCluster::new(N_NODES, n);
        let mut rng = StdRng::seed_from_u64(13);
        let u = 20_000;
        for k in 0..u {
            let x = pick_item(&mut rng, n);
            let op = UpdateOp::set((k as u64).to_le_bytes().to_vec());
            epidb.update(NodeId(0), x, op.clone()).unwrap();
            wb.update(NodeId(0), x, op).unwrap();
        }
        // epidb: at most one record per item at the origin.
        assert!(epidb.replica(NodeId(0)).log().total_len() <= n);
        // Wuu-Bernstein: every update retained while peers lag.
        assert_eq!(wb.log_len(NodeId(0)), u);
        // After one sync the recipient is bounded too.
        epidb.sync(NodeId(1), NodeId(0)).unwrap();
        assert!(epidb.replica(NodeId(1)).log().total_len() <= N_NODES * n);
    }

    #[test]
    fn table_renders() {
        let t = run(true);
        assert_eq!(t.rows.len(), volumes(true).len());
    }
}
