//! F5 — scaling with the number of servers n.
//!
//! Paper claim (§6): with the server count n as a parameter, one
//! propagation costs O(n) for the DBVV exchange plus O(n·m) to compute and
//! apply the tail vector — still independent of the database size N. The
//! per-item baseline pays O(N·n) comparisons.
//!
//! Setup: N fixed, m = 100 changed items at node 0, one pull by node 1,
//! sweeping n.

use epidb_common::NodeId;

use crate::table::{fmt_count, Table};

use super::{apply_distinct_updates, pull_protocols};

/// Changed items.
pub const M: usize = 100;

/// Server counts swept.
pub fn node_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 8, 32]
    } else {
        vec![2, 4, 8, 16, 32, 64]
    }
}

/// Database size.
pub fn n_items(quick: bool) -> usize {
    if quick {
        5_000
    } else {
        20_000
    }
}

/// Run F5.
pub fn run(quick: bool) -> Table {
    let n_items = n_items(quick);
    let mut table = Table::new(
        format!("F5: one-propagation cost vs server count n (N = {n_items}, m = {M})"),
        "Paper §6: epidb costs O(n) DBVV comparison + O(n*m) control; per-item VV costs O(N*n).",
    )
    .headers(vec!["n", "protocol", "cmp work", "vv cmps", "ctl bytes", "request B"]);

    for n in node_counts(quick) {
        // Only the two version-vector protocols are n-sensitive in an
        // interesting way; Lotus and Wuu-B are included for completeness.
        for mut proto in pull_protocols(n, n_items) {
            apply_distinct_updates(proto.as_mut(), NodeId(0), M, 1, 64);
            let before = proto.costs();
            proto.sync(NodeId(1), NodeId(0)).expect("sync");
            let d = proto.costs() - before;
            // Request size: the first message's control bytes (epidb: one
            // DBVV = 8n bytes + header).
            table.row(vec![
                n.to_string(),
                proto.name().to_string(),
                fmt_count(d.comparison_work()),
                fmt_count(d.vv_entry_cmps),
                fmt_count(d.control_bytes),
                fmt_count(d.messages_sent),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidb_vv_comparisons_scale_with_n_only() {
        let measure = |n: usize| -> u64 {
            let mut protos = pull_protocols(n, 5_000);
            let p = &mut protos[0];
            apply_distinct_updates(p.as_mut(), NodeId(0), M, 1, 16);
            let before = p.costs();
            p.sync(NodeId(1), NodeId(0)).unwrap();
            (p.costs() - before).vv_entry_cmps
        };
        let at4 = measure(4);
        let at16 = measure(16);
        // DBVV compare (n) + m IVV compares (n each): 4x n -> 4x cmps.
        assert_eq!(at16, at4 * 4);
        // And the absolute numbers match the analysis: n*(m+1) at each side
        // of the exchange -> 2 sides counted once each = n + n*m ... the
        // source compares the DBVV (n), the recipient compares the DBVV? No:
        // recipient IVV compares m*n, source DBVV compare n.
        assert_eq!(at4, 4 * (M as u64 + 1));
    }

    #[test]
    fn per_item_vv_scales_with_n_times_database() {
        let measure = |n: usize| -> u64 {
            let mut protos = pull_protocols(n, 5_000);
            let p = &mut protos[1];
            apply_distinct_updates(p.as_mut(), NodeId(0), M, 1, 16);
            let before = p.costs();
            p.sync(NodeId(1), NodeId(0)).unwrap();
            (p.costs() - before).vv_entry_cmps
        };
        assert_eq!(measure(4), 4 * 5_000);
        assert_eq!(measure(16), 16 * 5_000);
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(true).rows.len(), node_counts(true).len() * 4);
    }
}
