//! T6 — bytes on the wire per propagation.
//!
//! Paper claim (§6): the propagation message contains the data items being
//! copied "plus a constant amount of information per data item" (the item's
//! IVV and one retained log record per origin). The baselines ship more
//! control state: per-item VV anti-entropy ships every item's IVV; Lotus
//! ships the full modified-since list; Wuu–Bernstein ships one record per
//! raw update plus the n² matrix.
//!
//! Setup: same as T1's single measurement point (N fixed, m changed items,
//! one pull), reporting the byte breakdown.

use epidb_common::NodeId;

use crate::table::{fmt_count, Table};

use super::{apply_distinct_updates, pull_protocols};

/// Servers.
pub const N_NODES: usize = 4;
/// Changed items.
pub const M: usize = 100;
/// Updates per changed item (shows compaction in bytes too).
pub const UPDATES_PER_ITEM: usize = 3;
/// Payload size per item value.
pub const VALUE_SIZE: usize = 256;

/// Database size.
pub fn n_items(quick: bool) -> usize {
    if quick {
        20_000
    } else {
        100_000
    }
}

/// Run T6.
pub fn run(quick: bool) -> Table {
    let n = n_items(quick);
    let mut table = Table::new(
        format!(
            "T6: wire bytes for one propagation (N = {n}, m = {M} items x {UPDATES_PER_ITEM} updates, {VALUE_SIZE}B values, n = {N_NODES})"
        ),
        "Paper §6: epidb ships the copied values plus constant control info per item; baselines \
         ship O(N) or O(updates) control state.",
    )
    .headers(vec!["protocol", "messages", "control B", "payload B", "total B", "ctl/item B"]);

    for mut proto in pull_protocols(N_NODES, n) {
        apply_distinct_updates(proto.as_mut(), NodeId(0), M, UPDATES_PER_ITEM, VALUE_SIZE);
        let before = proto.costs();
        proto.sync(NodeId(1), NodeId(0)).expect("sync");
        let d = proto.costs() - before;
        table.row(vec![
            proto.name().to_string(),
            d.messages_sent.to_string(),
            fmt_count(d.control_bytes),
            fmt_count(d.bytes_sent - d.control_bytes),
            fmt_count(d.bytes_sent),
            format!("{:.1}", d.control_bytes as f64 / M as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidb_control_bytes_are_constant_per_item() {
        // Measure at two database sizes: epidb's control bytes depend on m
        // and n only.
        let measure = |n_items: usize| -> u64 {
            let mut protos = pull_protocols(N_NODES, n_items);
            let p = &mut protos[0];
            apply_distinct_updates(p.as_mut(), NodeId(0), M, 1, 64);
            let before = p.costs();
            p.sync(NodeId(1), NodeId(0)).unwrap();
            (p.costs() - before).control_bytes
        };
        assert_eq!(measure(2_000), measure(50_000));
    }

    #[test]
    fn per_item_vv_control_scales_with_n() {
        let measure = |n_items: usize| -> u64 {
            let mut protos = pull_protocols(N_NODES, n_items);
            let p = &mut protos[1];
            assert_eq!(p.name(), "per-item-vv");
            apply_distinct_updates(p.as_mut(), NodeId(0), M, 1, 64);
            let before = p.costs();
            p.sync(NodeId(1), NodeId(0)).unwrap();
            (p.costs() - before).control_bytes
        };
        let small = measure(2_000);
        let large = measure(20_000);
        assert!(large > small * 8, "control bytes did not scale: {small} -> {large}");
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(true).rows.len(), 4);
    }
}
