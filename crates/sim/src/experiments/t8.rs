//! T8 — extension: whole-item vs. delta (update-record) propagation.
//!
//! Paper §2: "Update propagation can be done by either copying the entire
//! data item, or by obtaining and applying log records for missing
//! updates… The ideas described in this paper are applicable for both
//! these methods." The paper presents whole-item copying; `epidb-core`
//! additionally implements the update-record mode (`pull_delta`, a
//! four-message exchange with an op-cache at the source). This experiment
//! measures the trade: payload savings for small edits on large items vs.
//! the extra round trip and per-op control bytes.
//!
//! Setup: two replicas already holding the same base (large values);
//! between syncs the source applies `EDITS_PER_ITEM` small byte-range
//! edits to `M` items; one pull, in each mode. A second scenario uses
//! full-overwrite updates, where delta mode degrades gracefully to
//! whole-item shipping.

use epidb_common::{Costs, ItemId, NodeId};
use epidb_core::{pull, pull_delta, Replica};
use epidb_store::UpdateOp;

use crate::table::{fmt_count, Table};

/// Items edited between syncs.
pub const M: usize = 50;
/// Small edits per item.
pub const EDITS_PER_ITEM: usize = 3;
/// Size of each small edit.
pub const EDIT_BYTES: usize = 16;

/// Base value sizes swept.
pub fn value_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![256, 4_096]
    } else {
        vec![256, 4_096, 65_536]
    }
}

struct Measured {
    payload: u64,
    control: u64,
    messages: u64,
}

fn measure(value_size: usize, range_edits: bool, use_delta: bool) -> Measured {
    let n_items = 1_000;
    let mut src = Replica::new(NodeId(0), 2, n_items);
    let mut dst = Replica::new(NodeId(1), 2, n_items);
    src.enable_delta(8 << 20);
    dst.enable_delta(8 << 20);

    // Base state, synced once (excluded from the measurement).
    for i in 0..M {
        src.update(ItemId::from_index(i), UpdateOp::set(vec![0x11; value_size])).expect("update");
    }
    pull(&mut dst, &mut src).expect("pull");

    // The measured inter-sync workload.
    for round in 0..EDITS_PER_ITEM {
        for i in 0..M {
            let op = if range_edits {
                UpdateOp::write_range(round * EDIT_BYTES, vec![round as u8 + 1; EDIT_BYTES])
            } else {
                UpdateOp::set(vec![round as u8 + 1; value_size])
            };
            src.update(ItemId::from_index(i), op).expect("update");
        }
    }

    let before: Costs = src.costs() + dst.costs();
    if use_delta {
        pull_delta(&mut dst, &mut src).expect("pull_delta");
    } else {
        pull(&mut dst, &mut src).expect("pull");
    }
    let d = (src.costs() + dst.costs()) - before;
    assert_eq!(src.dbvv().compare(dst.dbvv()), epidb_vv::VvOrd::Equal);
    for i in 0..M {
        let x = ItemId::from_index(i);
        assert_eq!(src.read(x).expect("read"), dst.read(x).expect("read"));
    }
    Measured {
        payload: d.bytes_sent - d.control_bytes,
        control: d.control_bytes,
        messages: d.messages_sent,
    }
}

/// Run T8.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        format!(
            "T8 (extension): whole-item vs delta propagation (m = {M} items, {EDITS_PER_ITEM} x {EDIT_BYTES}B edits each)"
        ),
        "Paper §2: both shipping modes fit the protocol. Delta mode trades one extra round trip \
         and per-op control for payload proportional to the edits, not the values; with \
         full-overwrite updates it degrades gracefully to whole-item shipping.",
    )
    .headers(vec![
        "value size",
        "workload",
        "mode",
        "payload B",
        "control B",
        "msgs",
    ]);

    for value_size in value_sizes(quick) {
        for (range_edits, wl_name) in [(true, "range edits"), (false, "overwrites")] {
            for (use_delta, mode) in [(false, "whole-item"), (true, "delta")] {
                let m = measure(value_size, range_edits, use_delta);
                table.row(vec![
                    fmt_count(value_size as u64),
                    wl_name.to_string(),
                    mode.to_string(),
                    fmt_count(m.payload),
                    fmt_count(m.control),
                    m.messages.to_string(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_saves_payload_on_range_edit_workloads() {
        let whole = measure(4_096, true, false);
        let delta = measure(4_096, true, true);
        // Whole mode ships m * 4KiB; delta ships m * 3 * 16B.
        assert!(whole.payload >= (M * 4_096) as u64);
        assert_eq!(delta.payload, (M * EDITS_PER_ITEM * EDIT_BYTES) as u64);
        assert!(delta.payload * 10 < whole.payload);
        // Delta pays two extra messages.
        assert_eq!(delta.messages, whole.messages + 2);
    }

    #[test]
    fn delta_degrades_gracefully_on_overwrites() {
        let whole = measure(1_024, false, false);
        let delta = measure(1_024, false, true);
        // Chain = 3 full overwrites (3 KiB) vs one whole value (1 KiB):
        // the source notices the chain is larger and ships whole values,
        // so delta mode never pays more payload than whole-item mode.
        assert_eq!(delta.payload, whole.payload);
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(true).rows.len(), value_sizes(true).len() * 4);
    }
}
