//! The log vector `L_i` with O(1) `AddLogRecord` (§4.2, Fig. 1).
//!
//! Records are stored in one slot arena shared by all components; each
//! component `L_ij` is a doubly linked list through that arena, ordered by
//! the origin's update sequence number `m` (ascending — the order in which
//! `j` performed the updates). The paper's per-item pointer array `P(x)`
//! (one pointer per origin) is kept here as a per-origin, per-item index so
//! the existing record for an item is unlinked in constant time when a newer
//! one arrives.

use epidb_common::{ItemId, NodeId};

/// Sentinel for "no slot".
const NIL: u32 = u32::MAX;

/// One log record `(x, m)`: origin's `m`-th update touched item `x`.
///
/// Records register only *that* an item was updated, not how — "these
/// records are very short" (§4.2) — which is why whole-item copying follows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LogRecord {
    /// The updated data item.
    pub item: ItemId,
    /// The origin server's database-wide update sequence number (`V_jj` at
    /// the time of the update, including it).
    pub m: u64,
}

#[derive(Clone, Debug)]
struct Slot {
    item: ItemId,
    m: u64,
    prev: u32,
    next: u32,
}

#[derive(Clone, Copy, Debug)]
struct ListEnds {
    head: u32,
    tail: u32,
    len: usize,
}

impl ListEnds {
    const EMPTY: ListEnds = ListEnds { head: NIL, tail: NIL, len: 0 };
}

/// Node `i`'s log vector: one component per origin server.
#[derive(Clone, Debug)]
pub struct LogVector {
    n_nodes: usize,
    n_items: usize,
    slots: Vec<Slot>,
    free: Vec<u32>,
    components: Vec<ListEnds>,
    /// `p[j][x]`: slot index of the retained record for item `x` in `L_ij`,
    /// or `NIL`. This is the paper's pointer array `P(x)` (component `P_j`),
    /// laid out per-origin for locality.
    p: Vec<Vec<u32>>,
}

impl LogVector {
    /// An empty log vector for `n_nodes` servers and `n_items` items.
    pub fn new(n_nodes: usize, n_items: usize) -> LogVector {
        LogVector {
            n_nodes,
            n_items,
            slots: Vec::new(),
            free: Vec::new(),
            components: vec![ListEnds::EMPTY; n_nodes],
            p: vec![vec![NIL; n_items]; n_nodes],
        }
    }

    /// Number of origin components.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Size of the item universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total records currently retained, across all components. Bounded by
    /// `n_nodes * n_items` regardless of how many updates occurred (§4.2).
    pub fn total_len(&self) -> usize {
        self.components.iter().map(|c| c.len).sum()
    }

    /// Records retained in component `L_ij`.
    pub fn component_len(&self, j: NodeId) -> usize {
        self.components[j.index()].len
    }

    /// The paper's `AddLogRecord(j, (x, m))` — O(1) in the common case.
    ///
    /// Links the new record at the end of `L_ij`, unlinks the existing
    /// record for the same item (located through `P_j(x)`), and repoints
    /// `P_j(x)` at the new record.
    ///
    /// Two robustness cases the paper leaves implicit (they only arise
    /// after a declared conflict suspended part of a tail):
    /// * if the retained record for the item is already at least as new
    ///   (`m` not larger), the call is a no-op;
    /// * if `m` is not larger than the current tail's `m`, the record is
    ///   inserted at its sorted position (a backward walk — rare, and only
    ///   ever shorter than the suspended region).
    pub fn add_record(&mut self, j: NodeId, rec: LogRecord) {
        let jj = j.index();

        // Unlink the old record for this item, if any; keep it when it is
        // the same or newer (stale re-receipt after a conflict).
        let old = self.p[jj][rec.item.index()];
        if old != NIL {
            if self.slots[old as usize].m >= rec.m {
                return;
            }
            self.unlink(jj, old);
            self.free.push(old);
        }

        // Find the slot after which the record belongs: the tail in the
        // common case, else walk backward to the first record with a
        // smaller m.
        let mut after = self.components[jj].tail;
        while after != NIL && self.slots[after as usize].m >= rec.m {
            debug_assert!(
                self.slots[after as usize].m > rec.m,
                "duplicate update sequence number within one origin component"
            );
            after = self.slots[after as usize].prev;
        }

        let slot = self.alloc(rec);
        let next =
            if after == NIL { self.components[jj].head } else { self.slots[after as usize].next };
        self.slots[slot as usize].prev = after;
        self.slots[slot as usize].next = next;
        if after == NIL {
            self.components[jj].head = slot;
        } else {
            self.slots[after as usize].next = slot;
        }
        if next == NIL {
            self.components[jj].tail = slot;
        } else {
            self.slots[next as usize].prev = slot;
        }
        self.components[jj].len += 1;

        self.p[jj][rec.item.index()] = slot;
    }

    /// The retained record for item `x` in component `j`, if any — the
    /// record `P_j(x)` points to.
    pub fn retained(&self, j: NodeId, x: ItemId) -> Option<LogRecord> {
        let slot = self.p[j.index()][x.index()];
        if slot == NIL {
            None
        } else {
            let s = &self.slots[slot as usize];
            Some(LogRecord { item: s.item, m: s.m })
        }
    }

    /// Compute the tail `D_k` of component `L_ik`: all retained records with
    /// `m > threshold`, in ascending `m` order (head-to-tail), walking
    /// backward from the tail — O(|D_k|), plus one examination to detect the
    /// stopping record (§6).
    ///
    /// `records_examined` is charged with the number of records touched
    /// (selected + the one that stopped the walk, if any).
    pub fn tail_after(
        &self,
        k: NodeId,
        threshold: u64,
        records_examined: &mut u64,
    ) -> Vec<LogRecord> {
        let mut out = Vec::new();
        let mut cur = self.components[k.index()].tail;
        while cur != NIL {
            let s = &self.slots[cur as usize];
            *records_examined += 1;
            if s.m <= threshold {
                break;
            }
            out.push(LogRecord { item: s.item, m: s.m });
            cur = s.prev;
        }
        out.reverse();
        out
    }

    /// Iterate component `L_ij` head-to-tail (ascending `m`). For tests,
    /// invariant checks, and tools; protocol code uses
    /// [`tail_after`](Self::tail_after).
    pub fn iter_component(&self, j: NodeId) -> ComponentIter<'_> {
        ComponentIter { log: self, cur: self.components[j.index()].head }
    }

    /// Evict the oldest records of component `L_ij` until at most `keep`
    /// remain (`keep == 0` empties the component). Returns the largest `m`
    /// evicted, or `None` when nothing was evicted.
    ///
    /// Eviction *forgets which item* an old update touched: a tail computed
    /// from a threshold below the returned `m` can no longer be proven
    /// complete, so callers that prune must raise their coverage floor to
    /// the returned value and refuse to serve tails below it.
    pub fn prune_component(&mut self, j: NodeId, keep: usize) -> Option<u64> {
        let jj = j.index();
        let mut max_evicted = None;
        // The component ascends in `m`, so the head is always the oldest
        // record and the last eviction carries the largest evicted `m`.
        while self.components[jj].len > keep {
            let head = self.components[jj].head;
            let (item, m) = {
                let s = &self.slots[head as usize];
                (s.item, s.m)
            };
            self.unlink(jj, head);
            self.p[jj][item.index()] = NIL;
            self.free.push(head);
            max_evicted = Some(m);
        }
        max_evicted
    }

    /// The largest `m` in component `j` (the latest update by `j` this node
    /// has logged), or 0 if the component is empty.
    pub fn max_m(&self, j: NodeId) -> u64 {
        let tail = self.components[j.index()].tail;
        if tail == NIL {
            0
        } else {
            self.slots[tail as usize].m
        }
    }

    /// Verify the structural invariants (test helper):
    /// each component is strictly ascending in `m`, holds at most one record
    /// per item, and agrees with the `P` pointer array in both directions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for j in 0..self.n_nodes {
            let node = NodeId::from_index(j);
            let mut seen = std::collections::HashSet::new();
            let mut last_m = 0u64;
            let mut count = 0usize;
            let mut cur = self.components[j].head;
            let mut prev = NIL;
            while cur != NIL {
                let s = &self.slots[cur as usize];
                if s.prev != prev {
                    return Err(format!("component {node}: broken prev link at slot {cur}"));
                }
                if count > 0 && s.m <= last_m {
                    return Err(format!(
                        "component {node}: m not ascending ({} after {last_m})",
                        s.m
                    ));
                }
                if !seen.insert(s.item) {
                    return Err(format!("component {node}: duplicate record for {}", s.item));
                }
                if self.p[j][s.item.index()] != cur {
                    return Err(format!(
                        "component {node}: P({}) does not point at its record",
                        s.item
                    ));
                }
                last_m = s.m;
                count += 1;
                prev = cur;
                cur = s.next;
            }
            if self.components[j].tail != prev {
                return Err(format!("component {node}: tail pointer stale"));
            }
            if count != self.components[j].len {
                return Err(format!(
                    "component {node}: len {} != walked {count}",
                    self.components[j].len
                ));
            }
            // Every P entry that is set must be reachable (i.e., counted).
            let p_set = self.p[j].iter().filter(|&&s| s != NIL).count();
            if p_set != count {
                return Err(format!("component {node}: {p_set} P entries but {count} records"));
            }
        }
        Ok(())
    }

    fn alloc(&mut self, rec: LogRecord) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Slot { item: rec.item, m: rec.m, prev: NIL, next: NIL };
            slot
        } else {
            let slot = self.slots.len() as u32;
            assert!(slot != NIL, "log vector slot arena exhausted");
            self.slots.push(Slot { item: rec.item, m: rec.m, prev: NIL, next: NIL });
            slot
        }
    }

    fn unlink(&mut self, j: usize, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.components[j].head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.components[j].tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.components[j].len -= 1;
    }
}

/// Iterator over one log component, head-to-tail.
pub struct ComponentIter<'a> {
    log: &'a LogVector,
    cur: u32,
}

impl Iterator for ComponentIter<'_> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<LogRecord> {
        if self.cur == NIL {
            return None;
        }
        let s = &self.log.slots[self.cur as usize];
        self.cur = s.next;
        Some(LogRecord { item: s.item, m: s.m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(item: u32, m: u64) -> LogRecord {
        LogRecord { item: ItemId(item), m }
    }

    fn collect(log: &LogVector, j: u16) -> Vec<(u32, u64)> {
        log.iter_component(NodeId(j)).map(|r| (r.item.0, r.m)).collect()
    }

    /// Replays Figure 1 of the paper exactly: component containing
    /// (y,1),(x,3),(z,4); adding (x,5) unlinks (x,3) and appends (x,5),
    /// yielding (y,1),(z,4),(x,5).
    #[test]
    fn fig1_replay() {
        // y=0, x=1, z=2
        let mut log = LogVector::new(1, 3);
        let j = NodeId(0);
        log.add_record(j, rec(0, 1)); // (y,1)
        log.add_record(j, rec(1, 3)); // (x,3)
        log.add_record(j, rec(2, 4)); // (z,4)
        assert_eq!(collect(&log, 0), vec![(0, 1), (1, 3), (2, 4)]);

        log.add_record(j, rec(1, 5)); // (x,5)
        assert_eq!(collect(&log, 0), vec![(0, 1), (2, 4), (1, 5)]);
        assert_eq!(log.component_len(j), 3);
        log.check_invariants().unwrap();
    }

    #[test]
    fn add_replaces_head_record() {
        let mut log = LogVector::new(1, 2);
        let j = NodeId(0);
        log.add_record(j, rec(0, 1));
        log.add_record(j, rec(1, 2));
        log.add_record(j, rec(0, 3)); // replaces the head
        assert_eq!(collect(&log, 0), vec![(1, 2), (0, 3)]);
        log.check_invariants().unwrap();
    }

    #[test]
    fn add_replaces_tail_record() {
        let mut log = LogVector::new(1, 2);
        let j = NodeId(0);
        log.add_record(j, rec(0, 1));
        log.add_record(j, rec(0, 2)); // replaces itself at the tail
        assert_eq!(collect(&log, 0), vec![(0, 2)]);
        assert_eq!(log.component_len(j), 1);
        log.check_invariants().unwrap();
    }

    #[test]
    fn retained_tracks_latest() {
        let mut log = LogVector::new(2, 3);
        log.add_record(NodeId(1), rec(2, 7));
        assert_eq!(log.retained(NodeId(1), ItemId(2)), Some(rec(2, 7)));
        assert_eq!(log.retained(NodeId(0), ItemId(2)), None);
        log.add_record(NodeId(1), rec(2, 9));
        assert_eq!(log.retained(NodeId(1), ItemId(2)), Some(rec(2, 9)));
    }

    #[test]
    fn components_are_independent() {
        let mut log = LogVector::new(3, 2);
        log.add_record(NodeId(0), rec(0, 1));
        log.add_record(NodeId(2), rec(0, 5));
        assert_eq!(log.component_len(NodeId(0)), 1);
        assert_eq!(log.component_len(NodeId(1)), 0);
        assert_eq!(log.component_len(NodeId(2)), 1);
        assert_eq!(log.total_len(), 2);
        log.check_invariants().unwrap();
    }

    #[test]
    fn tail_after_selects_records_above_threshold_in_order() {
        let mut log = LogVector::new(1, 5);
        let j = NodeId(0);
        for (x, m) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            log.add_record(j, rec(x, m));
        }
        let mut examined = 0;
        let tail = log.tail_after(j, 3, &mut examined);
        assert_eq!(tail, vec![rec(3, 4), rec(4, 5)]);
        // 2 selected + 1 stopping examination.
        assert_eq!(examined, 3);
    }

    #[test]
    fn tail_after_whole_component_and_empty() {
        let mut log = LogVector::new(1, 3);
        let j = NodeId(0);
        log.add_record(j, rec(0, 1));
        log.add_record(j, rec(1, 2));
        let mut ex = 0;
        assert_eq!(log.tail_after(j, 0, &mut ex), vec![rec(0, 1), rec(1, 2)]);
        assert_eq!(ex, 2); // all selected, no stopping record
        ex = 0;
        assert_eq!(log.tail_after(j, 99, &mut ex), vec![]);
        assert_eq!(ex, 1); // tail examined once, stops immediately
        ex = 0;
        assert_eq!(log.tail_after(NodeId(0), 0, &mut ex).len(), 2);
    }

    #[test]
    fn tail_after_empty_component_examines_nothing() {
        let log = LogVector::new(2, 2);
        let mut ex = 0;
        assert!(log.tail_after(NodeId(1), 0, &mut ex).is_empty());
        assert_eq!(ex, 0);
    }

    #[test]
    fn total_len_is_bounded_by_n_times_items() {
        let mut log = LogVector::new(2, 4);
        // 1000 updates, only 2 origins x 4 items possible records.
        for m in 1..=500u64 {
            log.add_record(NodeId(0), rec((m % 4) as u32, m));
            log.add_record(NodeId(1), rec((m % 3) as u32, m));
        }
        assert!(log.total_len() <= 2 * 4);
        assert_eq!(log.component_len(NodeId(0)), 4);
        assert_eq!(log.component_len(NodeId(1)), 3);
        log.check_invariants().unwrap();
    }

    #[test]
    fn max_m_tracks_tail() {
        let mut log = LogVector::new(1, 2);
        assert_eq!(log.max_m(NodeId(0)), 0);
        log.add_record(NodeId(0), rec(0, 4));
        log.add_record(NodeId(0), rec(1, 6));
        assert_eq!(log.max_m(NodeId(0)), 6);
        log.add_record(NodeId(0), rec(1, 7)); // replace tail
        assert_eq!(log.max_m(NodeId(0)), 7);
    }

    #[test]
    fn slots_are_recycled() {
        let mut log = LogVector::new(1, 1);
        for m in 1..=100u64 {
            log.add_record(NodeId(0), rec(0, m));
        }
        // Only ever one live record; the arena should not have grown past 2
        // slots (one live + at most one transiently allocated before free).
        assert!(log.slots.len() <= 2, "arena grew to {}", log.slots.len());
        log.check_invariants().unwrap();
    }

    #[test]
    fn out_of_order_insert_lands_sorted() {
        // Post-conflict case: a record older than the tail arrives; it must
        // be inserted at its sorted position, not appended.
        let mut log = LogVector::new(1, 3);
        log.add_record(NodeId(0), rec(0, 1));
        log.add_record(NodeId(0), rec(1, 5));
        log.add_record(NodeId(0), rec(2, 3));
        assert_eq!(collect(&log, 0), vec![(0, 1), (2, 3), (1, 5)]);
        log.check_invariants().unwrap();
    }

    #[test]
    fn out_of_order_insert_at_head() {
        let mut log = LogVector::new(1, 2);
        log.add_record(NodeId(0), rec(0, 9));
        log.add_record(NodeId(0), rec(1, 2));
        assert_eq!(collect(&log, 0), vec![(1, 2), (0, 9)]);
        log.check_invariants().unwrap();
    }

    #[test]
    fn prune_component_evicts_oldest_and_reports_floor() {
        let mut log = LogVector::new(2, 5);
        let j = NodeId(0);
        for (x, m) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            log.add_record(j, rec(x, m));
        }
        // Keep the two newest; the floor is the largest evicted m.
        assert_eq!(log.prune_component(j, 2), Some(3));
        assert_eq!(collect(&log, 0), vec![(3, 4), (4, 5)]);
        assert_eq!(log.component_len(j), 2);
        // Pruned items vanish from the pointer array too.
        assert_eq!(log.retained(j, ItemId(0)), None);
        assert_eq!(log.retained(j, ItemId(3)), Some(rec(3, 4)));
        // Other components are untouched; re-pruning at the cap is a no-op.
        assert_eq!(log.component_len(NodeId(1)), 0);
        assert_eq!(log.prune_component(j, 2), None);
        log.check_invariants().unwrap();

        // Evicted slots are recycled by later adds.
        let slots_before = log.slots.len();
        log.add_record(j, rec(0, 6));
        assert_eq!(log.slots.len(), slots_before);

        // keep == 0 empties the component.
        assert_eq!(log.prune_component(j, 0), Some(6));
        assert_eq!(log.component_len(j), 0);
        assert_eq!(log.max_m(j), 0);
        log.check_invariants().unwrap();
    }

    #[test]
    fn stale_re_add_is_a_no_op() {
        let mut log = LogVector::new(1, 2);
        log.add_record(NodeId(0), rec(0, 4));
        log.add_record(NodeId(0), rec(1, 6));
        // Same record again, and an older record for the same item.
        log.add_record(NodeId(0), rec(0, 4));
        log.add_record(NodeId(0), rec(0, 2));
        assert_eq!(collect(&log, 0), vec![(0, 4), (1, 6)]);
        log.check_invariants().unwrap();
    }
}
