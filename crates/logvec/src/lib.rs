#![warn(missing_docs)]

//! The paper's log machinery: the log vector (§4.2) and the auxiliary log
//! (§4.4).
//!
//! * [`LogVector`] — node `i`'s vector of logs `L_i`, one component `L_ij`
//!   per origin server `j`. Each record `(x, m)` says "origin `j`'s `m`-th
//!   update touched item `x`"; of all updates by `j` to a given item that
//!   `i` knows about, **only the latest record is retained**, which is what
//!   bounds the log by `n·N` records and makes propagation O(m). Records
//!   live in per-origin doubly linked lists with the per-item pointer array
//!   `P(x)` giving O(1) `AddLogRecord` (Fig. 1).
//! * [`AuxLog`] — the auxiliary log `AUX_i` holding *re-doable* updates
//!   applied to out-of-bound (auxiliary) item copies, with O(1)
//!   `Earliest(x)` and O(1) removal from the middle of the log.

pub mod aux;
pub mod logvec;

pub use aux::{AuxLog, AuxRecord};
pub use logvec::{LogRecord, LogVector};
