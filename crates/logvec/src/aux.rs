//! The auxiliary log `AUX_i` (§4.4).
//!
//! Stores the updates node `i` applied to out-of-bound (auxiliary) item
//! copies. Unlike log-vector records, auxiliary records carry enough
//! information to **re-do** the update — the operation itself and the IVV
//! the auxiliary copy had *at the time the update was applied (excluding
//! it)* — because intra-node propagation replays them onto the regular copy
//! (Fig. 4). Auxiliary records are never sent between nodes.
//!
//! The structure supports, in constant time (§4.4):
//! * `Earliest(x)` — the earliest record referring to item `x`;
//! * removal of a record from the middle of the log.
//!
//! Implementation: a slot arena threaded by **two** doubly linked lists —
//! the global arrival-order list and a per-item list — so both operations
//! are O(1) unlinks.

use std::collections::HashMap;

use epidb_common::ItemId;
use epidb_store::UpdateOp;
use epidb_vv::VersionVector;

const NIL: u32 = u32::MAX;

/// One auxiliary log record `(m, x, v_i(x), op)` (§4.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuxRecord {
    /// Arrival sequence number within this node's auxiliary log (the `m` of
    /// §4.4's record format; purely diagnostic — ordering is structural).
    pub seq: u64,
    /// The data item the update was applied to.
    pub item: ItemId,
    /// The IVV the auxiliary copy had when the update was applied,
    /// **excluding** this update. Intra-node propagation applies the record
    /// exactly when the regular copy's IVV equals this vector.
    pub vv: VersionVector,
    /// The re-doable operation.
    pub op: UpdateOp,
}

#[derive(Clone, Debug)]
struct Slot {
    rec: AuxRecord,
    prev: u32,
    next: u32,
    prev_item: u32,
    next_item: u32,
}

#[derive(Clone, Copy, Debug)]
struct ItemEnds {
    head: u32,
    tail: u32,
    len: usize,
}

/// The auxiliary log of one node.
#[derive(Clone, Debug, Default)]
pub struct AuxLog {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    per_item: HashMap<ItemId, ItemEnds>,
    next_seq: u64,
}

impl AuxLog {
    /// An empty auxiliary log.
    pub fn new() -> AuxLog {
        AuxLog { head: NIL, tail: NIL, ..AuxLog::default() }
    }

    /// Total records in the log.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the log holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records referring to item `x`.
    pub fn item_len(&self, x: ItemId) -> usize {
        self.per_item.get(&x).map_or(0, |e| e.len)
    }

    /// Append a record for an update just applied to `x`'s auxiliary copy.
    /// `vv` is the auxiliary IVV *before* the update. Returns the record's
    /// arrival sequence number.
    pub fn push(&mut self, item: ItemId, vv: VersionVector, op: UpdateOp) -> u64 {
        self.next_seq += 1;
        let seq = self.next_seq;
        let rec = AuxRecord { seq, item, vv, op };

        let slot =
            self.alloc(Slot { rec, prev: self.tail, next: NIL, prev_item: NIL, next_item: NIL });

        // Global list tail link.
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.slot_mut(self.tail).next = slot;
        }
        self.tail = slot;

        // Per-item list tail link.
        let ends = self.per_item.entry(item).or_insert(ItemEnds { head: NIL, tail: NIL, len: 0 });
        let item_tail = ends.tail;
        if item_tail == NIL {
            ends.head = slot;
        } else {
            ends.tail = slot; // set below after borrow juggling
        }
        ends.tail = slot;
        ends.len += 1;
        if item_tail != NIL {
            self.slot_mut(slot).prev_item = item_tail;
            self.slot_mut(item_tail).next_item = slot;
        }

        self.len += 1;
        seq
    }

    /// The paper's `Earliest(x)`: the earliest record referring to `x`,
    /// in O(1).
    pub fn earliest(&self, x: ItemId) -> Option<&AuxRecord> {
        let ends = self.per_item.get(&x)?;
        if ends.head == NIL {
            None
        } else {
            Some(&self.slots[ends.head as usize].as_ref().expect("live slot").rec)
        }
    }

    /// Remove and return the earliest record for `x` — the operation Fig. 4
    /// performs after applying it ("remove e from AUX_i"). O(1).
    pub fn pop_earliest(&mut self, x: ItemId) -> Option<AuxRecord> {
        let ends = *self.per_item.get(&x)?;
        if ends.head == NIL {
            return None;
        }
        Some(self.remove_slot(ends.head))
    }

    /// Iterate all records in arrival order (diagnostics/tests).
    pub fn iter(&self) -> AuxIter<'_> {
        AuxIter { log: self, cur: self.head }
    }

    /// Sum of operation payload bytes retained — the storage price of
    /// out-of-bound copying the paper discusses in §6.
    pub fn payload_bytes(&self) -> usize {
        self.iter().map(|r| r.op.payload_len()).sum()
    }

    /// Structural invariant check (test helper): both lists consistent,
    /// per-item lists ordered by seq, lengths agree.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Global walk.
        let mut count = 0;
        let mut prev = NIL;
        let mut last_seq = 0;
        let mut cur = self.head;
        while cur != NIL {
            let s = self.slots[cur as usize].as_ref().ok_or("freed slot in global list")?;
            if s.prev != prev {
                return Err(format!("broken global prev at {cur}"));
            }
            if s.rec.seq <= last_seq {
                return Err("global list not in arrival order".into());
            }
            last_seq = s.rec.seq;
            count += 1;
            prev = cur;
            cur = s.next;
        }
        if prev != self.tail {
            return Err("stale global tail".into());
        }
        if count != self.len {
            return Err(format!("len {} != walked {count}", self.len));
        }
        // Per-item walks.
        let mut item_total = 0;
        for (&x, ends) in &self.per_item {
            let mut prev = NIL;
            let mut walked = 0;
            let mut cur = ends.head;
            let mut last = 0;
            while cur != NIL {
                let s = self.slots[cur as usize].as_ref().ok_or("freed slot in item list")?;
                if s.rec.item != x {
                    return Err(format!("foreign record in item list of {x}"));
                }
                if s.prev_item != prev {
                    return Err(format!("broken item prev at {cur}"));
                }
                if s.rec.seq <= last {
                    return Err("item list not in arrival order".into());
                }
                last = s.rec.seq;
                walked += 1;
                prev = cur;
                cur = s.next_item;
            }
            if prev != ends.tail {
                return Err(format!("stale item tail for {x}"));
            }
            if walked != ends.len {
                return Err(format!("item len {} != walked {walked} for {x}", ends.len));
            }
            item_total += walked;
        }
        if item_total != self.len {
            return Err("per-item lengths do not sum to total".into());
        }
        Ok(())
    }

    fn alloc(&mut self, slot: Slot) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(slot);
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "aux log slot arena exhausted");
            self.slots.push(Some(slot));
            idx
        }
    }

    fn slot_mut(&mut self, idx: u32) -> &mut Slot {
        self.slots[idx as usize].as_mut().expect("live slot")
    }

    fn remove_slot(&mut self, idx: u32) -> AuxRecord {
        let slot = self.slots[idx as usize].take().expect("live slot");
        // Global unlink.
        if slot.prev == NIL {
            self.head = slot.next;
        } else {
            self.slot_mut(slot.prev).next = slot.next;
        }
        if slot.next == NIL {
            self.tail = slot.prev;
        } else {
            self.slot_mut(slot.next).prev = slot.prev;
        }
        // Item unlink.
        let item = slot.rec.item;
        {
            let ends = self.per_item.get_mut(&item).expect("item ends");
            if slot.prev_item == NIL {
                ends.head = slot.next_item;
            }
            if slot.next_item == NIL {
                ends.tail = slot.prev_item;
            }
            ends.len -= 1;
            if ends.len == 0 {
                self.per_item.remove(&item);
            }
        }
        if slot.prev_item != NIL {
            self.slot_mut(slot.prev_item).next_item = slot.next_item;
        }
        if slot.next_item != NIL {
            self.slot_mut(slot.next_item).prev_item = slot.prev_item;
        }

        self.free.push(idx);
        self.len -= 1;
        slot.rec
    }
}

/// Iterator over the auxiliary log in arrival order.
pub struct AuxIter<'a> {
    log: &'a AuxLog,
    cur: u32,
}

impl<'a> Iterator for AuxIter<'a> {
    type Item = &'a AuxRecord;

    fn next(&mut self) -> Option<&'a AuxRecord> {
        if self.cur == NIL {
            return None;
        }
        let s = self.log.slots[self.cur as usize].as_ref().expect("live slot");
        self.cur = s.next;
        Some(&s.rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(entries: &[u64]) -> VersionVector {
        VersionVector::from_entries(entries.to_vec())
    }

    fn op(tag: u8) -> UpdateOp {
        UpdateOp::set(vec![tag])
    }

    #[test]
    fn push_and_earliest() {
        let mut log = AuxLog::new();
        log.push(ItemId(1), vv(&[0, 0]), op(1));
        log.push(ItemId(2), vv(&[1, 0]), op(2));
        log.push(ItemId(1), vv(&[2, 0]), op(3));

        assert_eq!(log.len(), 3);
        assert_eq!(log.item_len(ItemId(1)), 2);
        assert_eq!(log.earliest(ItemId(1)).unwrap().op, op(1));
        assert_eq!(log.earliest(ItemId(2)).unwrap().op, op(2));
        assert!(log.earliest(ItemId(9)).is_none());
        log.check_invariants().unwrap();
    }

    #[test]
    fn pop_earliest_removes_in_fifo_order_per_item() {
        let mut log = AuxLog::new();
        log.push(ItemId(0), vv(&[0]), op(1));
        log.push(ItemId(1), vv(&[0]), op(2));
        log.push(ItemId(0), vv(&[1]), op(3));

        let r = log.pop_earliest(ItemId(0)).unwrap();
        assert_eq!(r.op, op(1));
        log.check_invariants().unwrap();
        let r = log.pop_earliest(ItemId(0)).unwrap();
        assert_eq!(r.op, op(3));
        assert!(log.pop_earliest(ItemId(0)).is_none());
        assert_eq!(log.len(), 1);
        // Item 1's record untouched.
        assert_eq!(log.earliest(ItemId(1)).unwrap().op, op(2));
        log.check_invariants().unwrap();
    }

    #[test]
    fn removal_from_middle_of_global_log() {
        let mut log = AuxLog::new();
        log.push(ItemId(0), vv(&[0]), op(1));
        log.push(ItemId(1), vv(&[0]), op(2)); // middle of global list
        log.push(ItemId(2), vv(&[0]), op(3));
        log.pop_earliest(ItemId(1)).unwrap();
        let order: Vec<u8> = log.iter().map(|r| r.op.payload_len() as u8).collect();
        assert_eq!(order.len(), 2);
        let items: Vec<ItemId> = log.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![ItemId(0), ItemId(2)]);
        log.check_invariants().unwrap();
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut log = AuxLog::new();
        let s1 = log.push(ItemId(0), vv(&[0]), op(1));
        let s2 = log.push(ItemId(0), vv(&[1]), op(2));
        assert!(s2 > s1);
    }

    #[test]
    fn record_stores_pre_update_vv() {
        let mut log = AuxLog::new();
        log.push(ItemId(3), vv(&[4, 2]), op(9));
        let r = log.earliest(ItemId(3)).unwrap();
        assert_eq!(r.vv, vv(&[4, 2]));
        assert_eq!(r.item, ItemId(3));
    }

    #[test]
    fn slots_recycled_after_pop() {
        let mut log = AuxLog::new();
        for round in 0..50 {
            log.push(ItemId(0), vv(&[round]), op(1));
            log.pop_earliest(ItemId(0)).unwrap();
        }
        assert!(log.slots.len() <= 2, "arena grew to {}", log.slots.len());
        assert!(log.is_empty());
        log.check_invariants().unwrap();
    }

    #[test]
    fn payload_bytes_sums_ops() {
        let mut log = AuxLog::new();
        log.push(ItemId(0), vv(&[0]), UpdateOp::set(vec![0; 10]));
        log.push(ItemId(1), vv(&[0]), UpdateOp::append(vec![0; 5]));
        assert_eq!(log.payload_bytes(), 15);
    }

    #[test]
    fn interleaved_push_pop_stress() {
        let mut log = AuxLog::new();
        for i in 0..200u64 {
            log.push(ItemId((i % 7) as u32), vv(&[i]), op((i % 250) as u8));
            if i % 3 == 0 {
                log.pop_earliest(ItemId((i % 5) as u32));
            }
            log.check_invariants().unwrap();
        }
    }
}
