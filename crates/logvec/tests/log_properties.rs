//! Property tests for the log structures.

use epidb_common::{ItemId, NodeId};
use epidb_log::{AuxLog, LogRecord, LogVector};
use epidb_store::UpdateOp;
use epidb_vv::VersionVector;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Random add sequences (each origin's m strictly increasing, items
    /// random) preserve the structural invariants, keep exactly the latest
    /// record per (origin, item), and never exceed n*N records.
    #[test]
    fn logvec_retains_latest_record_per_item(
        ops in prop::collection::vec((0u16..3, 0u32..8), 1..200)
    ) {
        const N_NODES: usize = 3;
        const N_ITEMS: usize = 8;
        let mut log = LogVector::new(N_NODES, N_ITEMS);
        let mut next_m = [0u64; N_NODES];
        let mut latest: HashMap<(u16, u32), u64> = HashMap::new();

        for (j, x) in ops {
            next_m[j as usize] += 1;
            let m = next_m[j as usize];
            log.add_record(NodeId(j), LogRecord { item: ItemId(x), m });
            latest.insert((j, x), m);
        }

        log.check_invariants().unwrap();
        prop_assert!(log.total_len() <= N_NODES * N_ITEMS);
        for ((j, x), m) in &latest {
            let rec = log.retained(NodeId(*j), ItemId(*x)).expect("record retained");
            prop_assert_eq!(rec.m, *m);
        }
        let retained_count: usize = (0..N_NODES).map(|j| log.component_len(NodeId(j as u16))).sum();
        prop_assert_eq!(retained_count, latest.len());
    }

    /// tail_after returns exactly the retained records above the threshold,
    /// ascending, and examines at most |selected|+1 records.
    #[test]
    fn tail_after_matches_filter(
        ops in prop::collection::vec(0u32..6, 1..100),
        threshold in 0u64..120
    ) {
        let mut log = LogVector::new(1, 6);
        for (i, x) in ops.iter().enumerate() {
            log.add_record(NodeId(0), LogRecord { item: ItemId(*x), m: i as u64 + 1 });
        }
        let mut examined = 0;
        let tail = log.tail_after(NodeId(0), threshold, &mut examined);
        let expected: Vec<LogRecord> =
            log.iter_component(NodeId(0)).filter(|r| r.m > threshold).collect();
        prop_assert_eq!(&tail, &expected);
        prop_assert!(examined as usize <= tail.len() + 1);
        for w in tail.windows(2) {
            prop_assert!(w[0].m < w[1].m);
        }
    }

    /// AuxLog: per-item FIFO order is preserved under interleaved
    /// push/pop_earliest, and invariants hold throughout.
    #[test]
    fn auxlog_fifo_per_item(
        script in prop::collection::vec((0u32..4, prop::bool::ANY), 1..120)
    ) {
        let mut log = AuxLog::new();
        let mut shadow: HashMap<u32, Vec<u64>> = HashMap::new();
        for (x, is_pop) in script {
            if is_pop {
                let popped = log.pop_earliest(ItemId(x));
                let expect = shadow.get_mut(&x).and_then(|v| if v.is_empty() { None } else { Some(v.remove(0)) });
                prop_assert_eq!(popped.map(|r| r.seq), expect);
            } else {
                let seq = log.push(ItemId(x), VersionVector::zero(2), UpdateOp::set(vec![x as u8]));
                shadow.entry(x).or_default().push(seq);
            }
            log.check_invariants().unwrap();
        }
        let total: usize = shadow.values().map(Vec::len).sum();
        prop_assert_eq!(log.len(), total);
    }
}
