#![warn(missing_docs)]

//! Baseline replication protocols the paper compares against (§8), each a
//! clean-room implementation of the protocol *as the paper describes it*,
//! instrumented with the same [`Costs`](epidb_common::Costs) counters as
//! the paper's protocol so overheads are directly comparable:
//!
//! * [`PerItemVvCluster`] — classic per-item version-vector anti-entropy
//!   (Ficus/Locus reconciliation, §8.3): correct, but O(N) comparisons per
//!   round.
//! * [`LotusCluster`] — the Lotus Notes protocol (§8.1): sequence numbers +
//!   last-propagation times; O(N) scans whenever the source changed, and
//!   silent lost updates under conflicts.
//! * [`OracleCluster`] — Oracle Symmetric Replication (§8.2): originator
//!   push with no forwarding; efficient but vulnerable to originator
//!   failure.
//! * [`WuuBernsteinCluster`] — log-based gossip with a 2-D version matrix
//!   (§8.3): scans the whole uncompacted log per gossip message.
//!
//! All are driven through the [`SyncProtocol`] trait; the simulator adds an
//! adapter for the paper's protocol itself, so every experiment runs the
//! same workload through the same interface.

pub mod lotus;
pub mod oracle;
pub mod per_item_vv;
pub mod protocol;
pub mod wuu_bernstein;

pub use lotus::LotusCluster;
pub use oracle::OracleCluster;
pub use per_item_vv::PerItemVvCluster;
pub use protocol::{SyncProtocol, SyncReport};
pub use wuu_bernstein::WuuBernsteinCluster;
