//! Baseline: the Lotus Notes replication protocol as the paper describes it
//! (§8.1).
//!
//! Every item copy carries a *sequence number* (count of updates it has
//! seen) and a modification time; every server records the last time it
//! propagated updates to each peer. Anti-entropy from `j` to `i`:
//!
//! 1. `j` checks whether anything in its replica changed since its last
//!    propagation to `i`. If not — constant time — nothing happens. If so,
//!    `j` scans **all** items and builds the list of `(item, seqno)` pairs
//!    modified since that time.
//! 2. `i` compares each listed seqno with its own copy's and copies the
//!    items where `j`'s is greater.
//!
//! The two weaknesses the paper identifies are reproduced faithfully:
//!
//! * after *indirect* propagation the replicas may be identical while
//!   `j`'s database has changed since the last direct propagation, so the
//!   full O(N) scan and a useless list exchange still happen;
//! * sequence numbers cannot represent concurrency, so when copies
//!   conflict, the copy with more updates silently wins and the other
//!   side's updates are **lost**. This cluster instruments exactly that
//!   with shadow update-id histories (`lost_updates` in [`Costs`]).

use std::collections::HashSet;

use epidb_common::costs::wire;
use epidb_common::{Costs, Error, ItemId, NodeId, Result};
use epidb_store::{ItemValue, UpdateOp};

use crate::protocol::{SyncProtocol, SyncReport};

#[derive(Clone, Debug)]
struct LotusItem {
    value: ItemValue,
    /// Updates this copy has seen (Lotus's per-item version info).
    seqno: u64,
    /// Logical time of the last local modification or adoption.
    modtime: u64,
    /// Shadow instrumentation (not part of the protocol): ids of the user
    /// updates reflected in this copy, for counting silently lost updates.
    history: HashSet<u64>,
}

#[derive(Clone, Debug)]
struct LotusNode {
    items: Vec<LotusItem>,
    /// Logical time anything in this replica last changed (for the
    /// constant-time "nothing changed" fast path).
    db_modtime: u64,
    /// `last_prop[i]`: when this node last propagated updates to node `i`.
    last_prop: Vec<u64>,
}

/// A cluster of replicas running the Lotus Notes protocol.
pub struct LotusCluster {
    nodes: Vec<LotusNode>,
    costs: Vec<Costs>,
    clock: u64,
    next_update_id: u64,
}

impl LotusCluster {
    /// Create `n_nodes` empty replicas of an `n_items` database.
    pub fn new(n_nodes: usize, n_items: usize) -> LotusCluster {
        let item =
            LotusItem { value: ItemValue::new(), seqno: 0, modtime: 0, history: HashSet::new() };
        LotusCluster {
            nodes: (0..n_nodes)
                .map(|_| LotusNode {
                    items: vec![item.clone(); n_items],
                    db_modtime: 0,
                    last_prop: vec![0; n_nodes],
                })
                .collect(),
            costs: vec![Costs::ZERO; n_nodes],
            clock: 0,
            next_update_id: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

impl SyncProtocol for LotusCluster {
    fn name(&self) -> &'static str {
        "lotus"
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn n_items(&self) -> usize {
        self.nodes[0].items.len()
    }

    fn update(&mut self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let now = self.tick();
        self.next_update_id += 1;
        let id = self.next_update_id;
        let n = self.nodes.get_mut(node.index()).ok_or(Error::UnknownNode(node))?;
        let it = n.items.get_mut(item.index()).ok_or(Error::UnknownItem(item))?;
        op.apply(&mut it.value);
        it.seqno += 1;
        it.modtime = now;
        it.history.insert(id);
        n.db_modtime = now;
        Ok(())
    }

    fn sync(&mut self, recipient: NodeId, source: NodeId) -> Result<SyncReport> {
        if recipient == source {
            return Ok(SyncReport { up_to_date: true, ..SyncReport::default() });
        }
        let now = self.tick();
        let i = recipient.index();
        let j = source.index();
        let mut report = SyncReport::default();

        // Step 1 fast path: nothing in j's replica changed since the last
        // propagation to i — detected in constant time.
        let since = self.nodes[j].last_prop[i];
        self.costs[j].items_scanned += 1; // the db_modtime check
        if self.nodes[j].db_modtime <= since {
            self.costs[j].charge_message(wire::MSG_HEADER, 0);
            report.up_to_date = true;
            return Ok(report);
        }

        // Step 1: scan ALL items for ones modified since `since` — the
        // linear overhead the paper criticizes.
        let mut list: Vec<(ItemId, u64)> = Vec::new();
        for (idx, it) in self.nodes[j].items.iter().enumerate() {
            self.costs[j].items_scanned += 1;
            if it.modtime > since {
                list.push((ItemId::from_index(idx), it.seqno));
            }
        }
        self.costs[j].charge_message(
            wire::MSG_HEADER + list.len() as u64 * (wire::ITEM_ID + wire::SEQNO),
            0,
        );
        self.nodes[j].last_prop[i] = now;

        // Step 2: i compares seqnos and copies where j's is greater.
        let mut payload = 0u64;
        let mut control = 0u64;
        for (x, j_seqno) in list {
            self.costs[i].items_scanned += 1;
            let i_seqno = self.nodes[i].items[x.index()].seqno;
            if j_seqno > i_seqno {
                let (value, history) = {
                    let src = &self.nodes[j].items[x.index()];
                    (src.value.clone(), src.history.clone())
                };
                let dst = &mut self.nodes[i].items[x.index()];
                // Instrumentation: any local update not reflected in the
                // adopted copy is silently lost — Lotus cannot tell
                // "newer" from "conflicting" (§8.1).
                let lost = dst.history.difference(&history).count() as u64;
                self.costs[i].lost_updates += lost;
                payload += value.len() as u64;
                control += wire::ITEM_ID;
                dst.value = value;
                dst.seqno = j_seqno;
                dst.history = history;
                dst.modtime = now;
                self.nodes[i].db_modtime = now;
                self.costs[i].items_copied += 1;
                report.items_copied += 1;
            }
            // When seqnos are equal but histories diverged, Lotus sees
            // nothing at all — the divergence is permanent and silent.
        }
        if report.items_copied > 0 {
            self.costs[j].charge_message(wire::MSG_HEADER + control, payload);
        }
        report.up_to_date = report.items_copied == 0;
        Ok(report)
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.nodes[node.index()].items[item.index()].value.as_bytes().to_vec()
    }

    fn costs(&self) -> Costs {
        self.costs.iter().copied().fold(Costs::ZERO, |a, b| a + b)
    }

    fn node_costs(&self, node: NodeId) -> Costs {
        self.costs[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagates_and_converges() {
        let mut c = LotusCluster::new(2, 10);
        c.update(NodeId(0), ItemId(2), UpdateOp::set(&b"doc"[..])).unwrap();
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(rep.items_copied, 1);
        assert!(c.converged());
    }

    #[test]
    fn fast_path_when_source_unchanged() {
        let mut c = LotusCluster::new(2, 1000);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        let before = c.costs();
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert!(rep.up_to_date);
        // Constant work: only the db_modtime check.
        assert_eq!((c.costs() - before).items_scanned, 1);
    }

    #[test]
    fn indirect_propagation_defeats_the_fast_path() {
        // A updates; B and C both pull from A. B and C are now identical,
        // but a C->B sync scans all of C's items because C's replica
        // changed since C last propagated to B.
        let n_items = 500;
        let mut c = LotusCluster::new(3, n_items);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        c.sync(NodeId(2), NodeId(0)).unwrap();
        assert!(c.converged());

        let before = c.node_costs(NodeId(2));
        let rep = c.sync(NodeId(1), NodeId(2)).unwrap();
        // Nothing to copy (identical replicas)...
        assert_eq!(rep.items_copied, 0);
        // ...but the source still scanned every item.
        let delta = c.node_costs(NodeId(2)) - before;
        assert_eq!(delta.items_scanned as usize, n_items + 1);
    }

    #[test]
    fn conflicting_update_is_silently_lost() {
        let mut c = LotusCluster::new(2, 4);
        // i makes two updates, j makes one conflicting update (the paper's
        // exact example): i's copy gets seqno 2, j's seqno 1, so i's copy
        // is declared "newer" and overrides j's update.
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"i1"[..])).unwrap();
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"i2"[..])).unwrap();
        c.update(NodeId(1), ItemId(0), UpdateOp::set(&b"j1"[..])).unwrap();

        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(rep.items_copied, 1);
        assert_eq!(c.value(NodeId(1), ItemId(0)), b"i2");
        // j's update vanished without any conflict report.
        assert_eq!(c.node_costs(NodeId(1)).lost_updates, 1);
        assert_eq!(c.costs().conflicts_detected, 0);
    }

    #[test]
    fn equal_seqno_divergence_is_silent_and_permanent() {
        let mut c = LotusCluster::new(2, 2);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"a"[..])).unwrap();
        c.update(NodeId(1), ItemId(0), UpdateOp::set(&b"b"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        c.sync(NodeId(0), NodeId(1)).unwrap();
        // Same seqno on both sides: neither copies; replicas diverge
        // forever with no conflict detected.
        assert!(!c.converged());
        assert_eq!(c.divergent_items(), vec![ItemId(0)]);
        assert_eq!(c.costs().conflicts_detected, 0);
    }

    #[test]
    fn forwarding_works_through_intermediaries() {
        let mut c = LotusCluster::new(3, 4);
        c.update(NodeId(0), ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        c.sync(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(c.value(NodeId(2), ItemId(1)), b"v");
    }
}
