//! The common driver interface for replication protocols.
//!
//! The experiment harness drives the paper's protocol and every baseline
//! through this one trait so that their overhead counters are directly
//! comparable: same workload, same sync schedule, same accounting.

use epidb_common::{Costs, ItemId, NodeId, Result};
use epidb_store::UpdateOp;

/// What one synchronization (anti-entropy round between a pair, or one
/// push) accomplished.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SyncReport {
    /// Item copies transferred to the recipient(s).
    pub items_copied: usize,
    /// Conflicts detected during this synchronization.
    pub conflicts: usize,
    /// True if the protocol decided no transfer was needed.
    pub up_to_date: bool,
}

/// A replicated-database protocol under test: `n_nodes` replicas of an
/// `n_items` database, user updates applied at single replicas, and some
/// form of update propagation.
pub trait SyncProtocol {
    /// Short name for tables ("epidb", "per-item-vv", "lotus", ...).
    fn name(&self) -> &'static str;

    /// Number of servers.
    fn n_nodes(&self) -> usize;

    /// Number of data items.
    fn n_items(&self) -> usize;

    /// Apply a user update at `node`.
    fn update(&mut self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()>;

    /// One anti-entropy exchange: `recipient` brings itself up to date with
    /// respect to `source` (pull). Protocols that do not support pairwise
    /// pull (Oracle-style push) return an error.
    fn sync(&mut self, recipient: NodeId, source: NodeId) -> Result<SyncReport>;

    /// For push-based propagation (Oracle Symmetric Replication): `origin`
    /// ships its accumulated updates to every *alive* peer. Pull-based
    /// protocols may leave this unimplemented.
    fn push(&mut self, _origin: NodeId, _alive: &[bool]) -> Result<SyncReport> {
        Err(epidb_common::Error::Network("push not supported by this protocol".into()))
    }

    /// True if the protocol propagates via pairwise pull.
    fn supports_pull(&self) -> bool {
        true
    }

    /// The user-visible value of `item` at `node`.
    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8>;

    /// Cumulative costs across all nodes.
    fn costs(&self) -> Costs;

    /// Cumulative costs charged at one node.
    fn node_costs(&self, node: NodeId) -> Costs;

    /// True if all replicas hold identical values for every item.
    fn converged(&self) -> bool {
        let n = self.n_nodes();
        if n <= 1 {
            return true;
        }
        for x in ItemId::all(self.n_items()) {
            let v0 = self.value(NodeId(0), x);
            for node in NodeId::all(n).skip(1) {
                if self.value(node, x) != v0 {
                    return false;
                }
            }
        }
        true
    }

    /// Items whose replicas are not all identical (diagnostics).
    fn divergent_items(&self) -> Vec<ItemId> {
        let n = self.n_nodes();
        let mut out = Vec::new();
        for x in ItemId::all(self.n_items()) {
            let v0 = self.value(NodeId(0), x);
            if NodeId::all(n).skip(1).any(|node| self.value(node, x) != v0) {
                out.push(x);
            }
        }
        out
    }
}
