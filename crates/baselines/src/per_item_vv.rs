//! Baseline: per-item version-vector anti-entropy (§8.3).
//!
//! This is the classic epidemic scheme the paper improves on — the
//! reconciliation style of Ficus/Locus: each anti-entropy round compares
//! the version vectors of **every** data item between the two replicas and
//! copies the items whose remote vector dominates. Correct (it detects all
//! conflicts, never adopts an older copy), but each round costs O(N·n)
//! comparisons and ships O(N·n) bytes of control state no matter how few
//! items changed.

use epidb_common::costs::wire;
use epidb_common::{Costs, Error, ItemId, NodeId, Result};
use epidb_store::{ItemStore, UpdateOp};
use epidb_vv::VvOrd;

use crate::protocol::{SyncProtocol, SyncReport};

/// A cluster of replicas running per-item version-vector anti-entropy.
pub struct PerItemVvCluster {
    nodes: Vec<ItemStore>,
    costs: Vec<Costs>,
}

impl PerItemVvCluster {
    /// Create `n_nodes` empty replicas of an `n_items` database.
    pub fn new(n_nodes: usize, n_items: usize) -> PerItemVvCluster {
        PerItemVvCluster {
            nodes: (0..n_nodes).map(|_| ItemStore::new(n_nodes, n_items)).collect(),
            costs: vec![Costs::ZERO; n_nodes],
        }
    }
}

impl SyncProtocol for PerItemVvCluster {
    fn name(&self) -> &'static str {
        "per-item-vv"
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn n_items(&self) -> usize {
        self.nodes[0].n_items()
    }

    fn update(&mut self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let store = self.nodes.get_mut(node.index()).ok_or(Error::UnknownNode(node))?;
        store.apply_local_update(node, item, &op)?;
        Ok(())
    }

    fn sync(&mut self, recipient: NodeId, source: NodeId) -> Result<SyncReport> {
        if recipient == source {
            return Ok(SyncReport { up_to_date: true, ..SyncReport::default() });
        }
        let n = self.n_nodes();
        let n_items = self.n_items();
        let mut report = SyncReport::default();

        // The source ships the IVVs of *all* items for comparison — the
        // per-item granularity of anti-entropy is exactly what makes this
        // scheme O(N).
        let src_control = n_items as u64 * (wire::ITEM_ID + wire::vv(n));
        self.costs[source.index()].charge_message(wire::MSG_HEADER + src_control, 0);

        let mut copied_payload = 0u64;
        let mut copied_control = 0u64;
        for x in ItemId::all(n_items) {
            let ord = {
                let local = self.nodes[recipient.index()].get(x)?;
                let remote = self.nodes[source.index()].get(x)?;
                let mut cmps = 0;
                let ord = remote.ivv.compare_counted(&local.ivv, &mut cmps);
                self.costs[recipient.index()].vv_entry_cmps += cmps;
                ord
            };
            self.costs[recipient.index()].items_scanned += 1;
            match ord {
                VvOrd::Dominates => {
                    let (value, ivv) = {
                        let remote = self.nodes[source.index()].get(x)?;
                        (remote.value.clone(), remote.ivv.clone())
                    };
                    copied_payload += value.len() as u64;
                    copied_control += wire::ITEM_ID;
                    self.nodes[recipient.index()].adopt(x, value, ivv)?;
                    self.costs[recipient.index()].items_copied += 1;
                    report.items_copied += 1;
                }
                VvOrd::Concurrent => {
                    self.costs[recipient.index()].conflicts_detected += 1;
                    report.conflicts += 1;
                }
                VvOrd::Equal | VvOrd::DominatedBy => {}
            }
        }
        // One transfer message for the adopted copies (if any).
        if report.items_copied > 0 {
            self.costs[source.index()]
                .charge_message(wire::MSG_HEADER + copied_control, copied_payload);
        }
        report.up_to_date = report.items_copied == 0 && report.conflicts == 0;
        Ok(report)
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.nodes[node.index()].get(item).expect("item").value.as_bytes().to_vec()
    }

    fn costs(&self) -> Costs {
        self.costs.iter().copied().fold(Costs::ZERO, |a, b| a + b)
    }

    fn node_costs(&self, node: NodeId) -> Costs {
        self.costs[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagates_and_converges() {
        let mut c = PerItemVvCluster::new(2, 10);
        c.update(NodeId(0), ItemId(3), UpdateOp::set(&b"v"[..])).unwrap();
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(rep.items_copied, 1);
        assert!(c.converged());
    }

    #[test]
    fn cost_scales_with_database_size_even_when_nothing_changed() {
        let mut c = PerItemVvCluster::new(2, 1000);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        let before = c.costs();
        // Replicas identical now — but the protocol still touches all 1000
        // items.
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert!(rep.up_to_date);
        let delta = c.costs() - before;
        assert_eq!(delta.items_scanned, 1000);
        assert_eq!(delta.vv_entry_cmps, 2000);
    }

    #[test]
    fn detects_conflicts_without_adopting() {
        let mut c = PerItemVvCluster::new(2, 4);
        c.update(NodeId(0), ItemId(1), UpdateOp::set(&b"a"[..])).unwrap();
        c.update(NodeId(1), ItemId(1), UpdateOp::set(&b"b"[..])).unwrap();
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(rep.conflicts, 1);
        assert_eq!(rep.items_copied, 0);
        assert_eq!(c.value(NodeId(1), ItemId(1)), b"b");
    }

    #[test]
    fn never_adopts_an_older_copy() {
        let mut c = PerItemVvCluster::new(2, 2);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"v1"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        c.update(NodeId(1), ItemId(0), UpdateOp::append(&b"+"[..])).unwrap();
        // Recipient newer: nothing copied back.
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(rep.items_copied, 0);
        assert_eq!(c.value(NodeId(1), ItemId(0)), b"v1+");
    }
}
