//! Baseline: Wuu & Bernstein-style log-based gossip (§8.3, footnote 4).
//!
//! Each node keeps a 2-D *version matrix* `TT`: `TT[k][l]` is this node's
//! knowledge of how many `l`-originated updates node `k` has seen (row
//! `TT[i]` at node `i` is its own version vector). A gossip message from
//! `j` to `i` carries the log records `j` believes `i` is missing plus
//! `j`'s whole matrix; records are garbage-collected once the matrix shows
//! every node has them.
//!
//! The overheads the paper points out are reproduced:
//! * building a gossip message **scans the entire retained log** and
//!   compares the recipient's version information against every record —
//!   overhead linear in the number of outstanding updates (footnote 4);
//! * the log retains **one record per update** (not one per item), so it
//!   grows with update volume until every node has been reached, unlike the
//!   paper's log vector which is bounded by `n · N` (experiment T5).
//!
//! Operations are applied in `(lamport, origin)` order, exactly once per
//! origin sequence. With full-overwrite (`Set`) operations — the form the
//! cross-protocol experiments use — this converges deterministically.

use epidb_common::costs::wire;
use epidb_common::{Costs, Error, ItemId, NodeId, Result};
use epidb_store::{ItemValue, UpdateOp};

use crate::protocol::{SyncProtocol, SyncReport};

/// One logged update event.
#[derive(Clone, Debug)]
struct Event {
    origin: NodeId,
    /// Per-origin sequence number (1-based).
    seq: u64,
    /// Lamport timestamp for deterministic cross-origin apply order.
    ts: u64,
    item: ItemId,
    op: UpdateOp,
}

#[derive(Clone, Debug)]
struct WbNode {
    values: Vec<ItemValue>,
    /// Per-item `(ts, origin)` of the update currently reflected in the
    /// value — the last-writer-wins guard that makes concurrent
    /// full-overwrite updates converge deterministically.
    markers: Vec<(u64, u16)>,
    /// `tt[k][l]`: how many `l`-originated updates this node believes node
    /// `k` has seen.
    tt: Vec<Vec<u64>>,
    log: Vec<Event>,
    clock: u64,
}

/// A cluster of replicas running log-based gossip.
pub struct WuuBernsteinCluster {
    nodes: Vec<WbNode>,
    costs: Vec<Costs>,
}

impl WuuBernsteinCluster {
    /// Create `n_nodes` empty replicas of an `n_items` database.
    pub fn new(n_nodes: usize, n_items: usize) -> WuuBernsteinCluster {
        WuuBernsteinCluster {
            nodes: (0..n_nodes)
                .map(|_| WbNode {
                    values: vec![ItemValue::new(); n_items],
                    markers: vec![(0, 0); n_items],
                    tt: vec![vec![0; n_nodes]; n_nodes],
                    log: Vec::new(),
                    clock: 0,
                })
                .collect(),
            costs: vec![Costs::ZERO; n_nodes],
        }
    }

    /// Retained log length at `node` (grows with outstanding updates —
    /// experiment T5 contrasts this with the paper's bounded log vector).
    pub fn log_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].log.len()
    }

    fn gc(&mut self, node: usize) {
        let n = self.nodes.len();
        let tt = &self.nodes[node].tt;
        // A record is removable once every node is known to have seen it.
        let min_known: Vec<u64> =
            (0..n).map(|l| (0..n).map(|k| tt[k][l]).min().unwrap_or(0)).collect();
        self.nodes[node].log.retain(|e| e.seq > min_known[e.origin.index()]);
    }
}

impl SyncProtocol for WuuBernsteinCluster {
    fn name(&self) -> &'static str {
        "wuu-bernstein"
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn n_items(&self) -> usize {
        self.nodes[0].values.len()
    }

    fn update(&mut self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let i = node.index();
        let n = self.nodes.get_mut(i).ok_or(Error::UnknownNode(node))?;
        let v = n.values.get_mut(item.index()).ok_or(Error::UnknownItem(item))?;
        op.apply(v);
        n.clock += 1;
        n.tt[i][i] += 1;
        n.markers[item.index()] = (n.clock, node.0);
        let ev = Event { origin: node, seq: n.tt[i][i], ts: n.clock, item, op };
        n.log.push(ev);
        Ok(())
    }

    fn sync(&mut self, recipient: NodeId, source: NodeId) -> Result<SyncReport> {
        if recipient == source {
            return Ok(SyncReport { up_to_date: true, ..SyncReport::default() });
        }
        let i = recipient.index();
        let j = source.index();
        let n = self.n_nodes();
        let mut report = SyncReport::default();

        // Source: scan the ENTIRE retained log, comparing its knowledge of
        // the recipient against every record (footnote 4's per-record
        // comparison).
        let mut selected: Vec<Event> = Vec::new();
        for e in &self.nodes[j].log {
            self.costs[j].log_records_examined += 1;
            self.costs[j].vv_entry_cmps += 1;
            if self.nodes[j].tt[i][e.origin.index()] < e.seq {
                selected.push(e.clone());
            }
        }
        let payload: u64 = selected.iter().map(|e| e.op.payload_len() as u64).sum();
        let control = selected.len() as u64 * (wire::LOG_RECORD + wire::TIMESTAMP)
            + (n * n) as u64 * wire::VV_ENTRY; // the matrix rides along
        self.costs[j].charge_message(wire::MSG_HEADER + control, payload);

        // Recipient: apply missing events in deterministic (ts, origin)
        // order, exactly once per origin sequence.
        selected.sort_by_key(|e| (e.ts, e.origin));
        let mut max_ts = 0;
        for e in selected {
            max_ts = max_ts.max(e.ts);
            let o = e.origin.index();
            if self.nodes[i].tt[i][o] + 1 == e.seq {
                // The event is new to this node. It modifies the value only
                // if it is the latest write to the item seen so far
                // (last-writer-wins by (lamport, origin)); either way the
                // node now "knows" the update.
                if (e.ts, e.origin.0) > self.nodes[i].markers[e.item.index()] {
                    e.op.apply(&mut self.nodes[i].values[e.item.index()]);
                    self.nodes[i].markers[e.item.index()] = (e.ts, e.origin.0);
                    self.costs[i].items_copied += 1;
                    report.items_copied += 1;
                }
                self.nodes[i].tt[i][o] = e.seq;
                self.nodes[i].log.push(e);
            } else if self.nodes[i].tt[i][o] < e.seq {
                // Gap (possible only if GC outran delivery, which the
                // all-pairs matrix prevents); keep the record for later.
                self.nodes[i].log.push(e);
            }
        }
        self.nodes[i].clock = self.nodes[i].clock.max(max_ts);

        // Merge the version matrices (component-wise max over all rows),
        // update the source's view of the recipient, then GC both logs.
        let src_tt = self.nodes[j].tt.clone();
        for (src_row, dst_row) in src_tt.iter().zip(self.nodes[i].tt.iter_mut()) {
            for (src, dst) in src_row.iter().zip(dst_row.iter_mut()) {
                self.costs[i].vv_entry_cmps += 1;
                if *src > *dst {
                    *dst = *src;
                }
            }
        }
        // The source learns what the recipient now has (the gossip ack).
        let rec_row = self.nodes[i].tt[i].clone();
        for (src, dst) in rec_row.iter().zip(self.nodes[j].tt[i].iter_mut()) {
            if *src > *dst {
                *dst = *src;
            }
        }
        self.gc(i);
        self.gc(j);

        report.up_to_date = report.items_copied == 0;
        Ok(report)
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.nodes[node.index()].values[item.index()].as_bytes().to_vec()
    }

    fn costs(&self) -> Costs {
        self.costs.iter().copied().fold(Costs::ZERO, |a, b| a + b)
    }

    fn node_costs(&self, node: NodeId) -> Costs {
        self.costs[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_propagates_and_converges() {
        let mut c = WuuBernsteinCluster::new(3, 4);
        c.update(NodeId(0), ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        c.sync(NodeId(2), NodeId(1)).unwrap(); // forwarding via gossip
        assert_eq!(c.value(NodeId(2), ItemId(1)), b"v");
        assert!(c.converged());
    }

    #[test]
    fn log_scan_is_linear_in_outstanding_updates() {
        let mut c = WuuBernsteinCluster::new(3, 10);
        for k in 0..50u32 {
            c.update(NodeId(0), ItemId(k % 10), UpdateOp::set(vec![k as u8])).unwrap();
        }
        let before = c.node_costs(NodeId(0));
        c.sync(NodeId(1), NodeId(0)).unwrap();
        let delta = c.node_costs(NodeId(0)) - before;
        // All 50 records scanned — not 10 items' worth.
        assert_eq!(delta.log_records_examined, 50);
    }

    #[test]
    fn records_are_gced_once_everyone_knows() {
        let mut c = WuuBernsteinCluster::new(2, 2);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        assert_eq!(c.log_len(NodeId(0)), 1);
        c.sync(NodeId(1), NodeId(0)).unwrap();
        // After the exchange node 0 knows node 1 has it; both GC.
        assert_eq!(c.log_len(NodeId(0)), 0);
        assert_eq!(c.log_len(NodeId(1)), 0);
    }

    #[test]
    fn log_grows_while_some_node_is_unreached() {
        let mut c = WuuBernsteinCluster::new(3, 2);
        for k in 0..20u32 {
            c.update(NodeId(0), ItemId(0), UpdateOp::set(vec![k as u8])).unwrap();
        }
        c.sync(NodeId(1), NodeId(0)).unwrap();
        // Node 2 never contacted: records must be retained everywhere.
        assert_eq!(c.log_len(NodeId(0)), 20);
        assert_eq!(c.log_len(NodeId(1)), 20);
        c.sync(NodeId(2), NodeId(1)).unwrap();
        c.sync(NodeId(0), NodeId(2)).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(c.log_len(NodeId(0)), 0);
        assert!(c.converged());
    }

    #[test]
    fn no_duplicate_application() {
        let mut c = WuuBernsteinCluster::new(2, 1);
        c.update(NodeId(0), ItemId(0), UpdateOp::append(&b"x"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        let rep = c.sync(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(rep.items_copied, 0);
        assert_eq!(c.value(NodeId(1), ItemId(0)), b"x");
    }

    #[test]
    fn concurrent_set_updates_converge_deterministically() {
        let mut c = WuuBernsteinCluster::new(2, 1);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"a"[..])).unwrap();
        c.update(NodeId(1), ItemId(0), UpdateOp::set(&b"b"[..])).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        c.sync(NodeId(0), NodeId(1)).unwrap();
        c.sync(NodeId(1), NodeId(0)).unwrap();
        assert!(c.converged(), "divergent: {:?}", c.divergent_items());
    }
}
