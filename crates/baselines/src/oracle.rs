//! Baseline: Oracle Symmetric Replication as the paper describes it
//! (§8.2 and the Introduction's "simple solution" dilemma).
//!
//! Every server keeps track of the updates it performs and periodically
//! ships them to all other servers. Recipients apply them but **never
//! forward them** — full responsibility for propagation lies with the
//! originating server. In the absence of failures this is very efficient
//! (only the changed data moves, no comparison work at all); but if the
//! originator fails mid-push, the servers it did not reach stay obsolete
//! until the originator recovers — the vulnerability experiment T3
//! measures.

use epidb_common::costs::wire;
use epidb_common::{Costs, Error, ItemId, NodeId, Result};
use epidb_store::{ItemValue, UpdateOp};

use crate::protocol::{SyncProtocol, SyncReport};

/// One update record in an originator's outbound log.
#[derive(Clone, Debug)]
struct PendingUpdate {
    seq: u64,
    item: ItemId,
    op: UpdateOp,
}

#[derive(Clone, Debug)]
struct OracleNode {
    values: Vec<ItemValue>,
    /// Updates originated here, in order.
    outbound: Vec<PendingUpdate>,
    /// `sent_upto[d]`: sequence number up to which this node's updates have
    /// been delivered to destination `d`.
    sent_upto: Vec<u64>,
    /// `applied_from[o]`: sequence number up to which updates from origin
    /// `o` have been applied here (in-order delivery).
    applied_from: Vec<u64>,
}

/// A cluster of replicas running Oracle-style originator push.
pub struct OracleCluster {
    nodes: Vec<OracleNode>,
    costs: Vec<Costs>,
}

impl OracleCluster {
    /// Create `n_nodes` empty replicas of an `n_items` database.
    pub fn new(n_nodes: usize, n_items: usize) -> OracleCluster {
        OracleCluster {
            nodes: (0..n_nodes)
                .map(|_| OracleNode {
                    values: vec![ItemValue::new(); n_items],
                    outbound: Vec::new(),
                    sent_upto: vec![0; n_nodes],
                    applied_from: vec![0; n_nodes],
                })
                .collect(),
            costs: vec![Costs::ZERO; n_nodes],
        }
    }

    /// Push `origin`'s pending updates to a single destination (used by the
    /// failure experiment to model a crash part-way through the
    /// destination list). Both ends must be alive.
    pub fn push_to(&mut self, origin: NodeId, dest: NodeId) -> Result<usize> {
        if origin == dest {
            return Ok(0);
        }
        let o = origin.index();
        let d = dest.index();
        if o >= self.nodes.len() {
            return Err(Error::UnknownNode(origin));
        }
        if d >= self.nodes.len() {
            return Err(Error::UnknownNode(dest));
        }
        let from_seq = self.nodes[o].sent_upto[d];
        let to_send: Vec<PendingUpdate> =
            self.nodes[o].outbound.iter().filter(|u| u.seq > from_seq).cloned().collect();
        if to_send.is_empty() {
            return Ok(0);
        }
        let payload: u64 = to_send.iter().map(|u| u.op.payload_len() as u64).sum();
        let control = to_send.len() as u64 * wire::LOG_RECORD;
        self.costs[o].charge_message(wire::MSG_HEADER + control, payload);
        self.costs[o].log_records_examined += to_send.len() as u64;

        let mut applied = 0;
        let last_seq = to_send.last().map(|u| u.seq).unwrap_or(from_seq);
        for u in to_send {
            // In-order, exactly-once application per origin.
            if u.seq == self.nodes[d].applied_from[o] + 1 {
                u.op.apply(&mut self.nodes[d].values[u.item.index()]);
                self.nodes[d].applied_from[o] = u.seq;
                self.costs[d].items_copied += 1;
                applied += 1;
            }
        }
        self.nodes[o].sent_upto[d] = last_seq;
        Ok(applied)
    }

    /// Garbage-collect an originator's outbound log entries that every
    /// destination has received.
    pub fn gc_outbound(&mut self, origin: NodeId) {
        let o = origin.index();
        let min_sent = (0..self.nodes.len())
            .filter(|&d| d != o)
            .map(|d| self.nodes[o].sent_upto[d])
            .min()
            .unwrap_or(u64::MAX);
        self.nodes[o].outbound.retain(|u| u.seq > min_sent);
    }

    /// Outbound log length at `origin` (diagnostics).
    pub fn outbound_len(&self, origin: NodeId) -> usize {
        self.nodes[origin.index()].outbound.len()
    }
}

impl SyncProtocol for OracleCluster {
    fn name(&self) -> &'static str {
        "oracle-push"
    }

    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn n_items(&self) -> usize {
        self.nodes[0].values.len()
    }

    fn update(&mut self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        let n = self.nodes.get_mut(node.index()).ok_or(Error::UnknownNode(node))?;
        let v = n.values.get_mut(item.index()).ok_or(Error::UnknownItem(item))?;
        op.apply(v);
        let seq = n.applied_from[node.index()] + 1;
        n.applied_from[node.index()] = seq;
        n.outbound.push(PendingUpdate { seq, item, op });
        Ok(())
    }

    fn sync(&mut self, _recipient: NodeId, _source: NodeId) -> Result<SyncReport> {
        Err(Error::Network(
            "Oracle symmetric replication does not perform pairwise anti-entropy".into(),
        ))
    }

    fn supports_pull(&self) -> bool {
        false
    }

    fn push(&mut self, origin: NodeId, alive: &[bool]) -> Result<SyncReport> {
        let mut report = SyncReport::default();
        if !alive.get(origin.index()).copied().unwrap_or(false) {
            return Err(Error::NodeDown(origin));
        }
        for d in NodeId::all(self.n_nodes()) {
            if d == origin || !alive[d.index()] {
                continue;
            }
            report.items_copied += self.push_to(origin, d)?;
        }
        self.gc_outbound(origin);
        report.up_to_date = report.items_copied == 0;
        Ok(report)
    }

    fn value(&self, node: NodeId, item: ItemId) -> Vec<u8> {
        self.nodes[node.index()].values[item.index()].as_bytes().to_vec()
    }

    fn costs(&self) -> Costs {
        self.costs.iter().copied().fold(Costs::ZERO, |a, b| a + b)
    }

    fn node_costs(&self, node: NodeId) -> Costs {
        self.costs[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_reaches_all_alive_nodes() {
        let mut c = OracleCluster::new(3, 4);
        c.update(NodeId(0), ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let rep = c.push(NodeId(0), &[true, true, true]).unwrap();
        assert_eq!(rep.items_copied, 2);
        assert!(c.converged());
    }

    #[test]
    fn no_forwarding_leaves_unreached_nodes_stale() {
        // Originator reaches node 1, then "crashes" before reaching node 2.
        let mut c = OracleCluster::new(3, 2);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        c.push_to(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(c.value(NodeId(1), ItemId(0)), b"v");
        assert_eq!(c.value(NodeId(2), ItemId(0)), b"");

        // Node 1 has the data but *cannot* forward it: only origin pushes.
        // Pull is unsupported; a push from node 1 ships nothing (node 1
        // originated nothing).
        let rep = c.push(NodeId(1), &[false, true, true]).unwrap();
        assert_eq!(rep.items_copied, 0);
        assert_eq!(c.value(NodeId(2), ItemId(0)), b"");
        assert!(!c.converged());

        // Only the originator's recovery completes propagation.
        let rep = c.push(NodeId(0), &[true, true, true]).unwrap();
        assert_eq!(rep.items_copied, 1);
        assert!(c.converged());
    }

    #[test]
    fn push_is_incremental_and_in_order() {
        let mut c = OracleCluster::new(2, 1);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"a"[..])).unwrap();
        c.push(NodeId(0), &[true, true]).unwrap();
        c.update(NodeId(0), ItemId(0), UpdateOp::append(&b"b"[..])).unwrap();
        c.update(NodeId(0), ItemId(0), UpdateOp::append(&b"c"[..])).unwrap();
        let rep = c.push(NodeId(0), &[true, true]).unwrap();
        assert_eq!(rep.items_copied, 2);
        assert_eq!(c.value(NodeId(1), ItemId(0)), b"abc");
        // Nothing further to send.
        let rep = c.push(NodeId(0), &[true, true]).unwrap();
        assert!(rep.up_to_date);
    }

    #[test]
    fn outbound_log_is_gced_after_full_delivery() {
        let mut c = OracleCluster::new(3, 1);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
        assert_eq!(c.outbound_len(NodeId(0)), 1);
        c.push(NodeId(0), &[true, true, true]).unwrap();
        assert_eq!(c.outbound_len(NodeId(0)), 0);
        // Partial delivery keeps the log.
        c.update(NodeId(0), ItemId(0), UpdateOp::append(&b"y"[..])).unwrap();
        c.push(NodeId(0), &[true, true, false]).unwrap();
        assert_eq!(c.outbound_len(NodeId(0)), 1);
    }

    #[test]
    fn pull_is_rejected() {
        let mut c = OracleCluster::new(2, 1);
        assert!(c.sync(NodeId(0), NodeId(1)).is_err());
        assert!(!c.supports_pull());
    }

    #[test]
    fn push_from_crashed_origin_fails() {
        let mut c = OracleCluster::new(2, 1);
        c.update(NodeId(0), ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
        assert!(matches!(c.push(NodeId(0), &[false, true]), Err(Error::NodeDown(NodeId(0)))));
    }
}
