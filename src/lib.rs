#![warn(missing_docs)]

//! # epidb
//!
//! A production-quality Rust implementation of
//! *Rabinovich, Gehani & Kononov, "Scalable Update Propagation in Epidemic
//! Replicated Databases"* (EDBT 1996) — database version vectors, the
//! compacted log vector, out-of-bound copying with intra-node propagation —
//! together with the baselines the paper compares against (per-item version
//! vectors, Lotus Notes, Oracle Symmetric Replication, Wuu–Bernstein
//! gossip), a deterministic simulator with a correctness auditor, a
//! threaded runtime, and a benchmark/experiment harness.
//!
//! This crate is a facade: it re-exports the workspace's public API. See
//! the individual crates for details:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`vv`] | item & database version vectors (§3, §4.1) |
//! | [`store`] | items, values, re-doable update operations (§2, §4.4) |
//! | [`log`] | the log vector and auxiliary log (§4.2, §4.4, Fig. 1) |
//! | [`core`] | the protocol: replicas, propagation, OOB, tokens (§5), the transport-agnostic engine + wire codec, sharded partial replication (shard maps, routing, handoff) |
//! | [`durable`] | on-disk durability: write-ahead log, atomic snapshot checkpoints, crash recovery, per-shard WAL/snapshot directories |
//! | [`mc`] | exhaustive protocol model checker: bounded exploration of message/crash interleavings with invariant predicates and minimized counterexamples |
//! | [`net`] | threaded and TCP cluster runtimes (engine adapters) with fault injection, sharded variants gossiping per owned shard |
//! | [`baselines`] | the §8 comparison protocols |
//! | [`sim`] | simulator, workloads, auditor, experiment suite |
//!
//! # Quick start
//!
//! ```
//! use epidb::prelude::*;
//!
//! // Three servers replicating a 10_000-item database.
//! let mut a = Replica::new(NodeId(0), 3, 10_000);
//! let mut b = Replica::new(NodeId(1), 3, 10_000);
//! let mut c = Replica::new(NodeId(2), 3, 10_000);
//!
//! // Users update single replicas...
//! a.update(ItemId(17), UpdateOp::set(&b"design.doc v1"[..])).unwrap();
//! b.update(ItemId(99), UpdateOp::set(&b"notes"[..])).unwrap();
//!
//! // ...anti-entropy propagates, paying O(items-copied), not O(10_000).
//! pull(&mut b, &mut a).unwrap();
//! pull(&mut c, &mut b).unwrap(); // transitive: c gets a's update via b
//! assert_eq!(c.read(ItemId(17)).unwrap().as_bytes(), b"design.doc v1");
//!
//! // Identical replicas are recognized from the DBVVs alone, in O(n).
//! assert!(matches!(pull(&mut c, &mut b).unwrap(), PullOutcome::UpToDate));
//! ```

pub use epidb_baselines as baselines;
pub use epidb_common as common;
pub use epidb_core as core;
pub use epidb_durable as durable;
pub use epidb_log as log;
pub use epidb_mc as mc;
pub use epidb_net as net;
pub use epidb_sim as sim;
pub use epidb_store as store;
pub use epidb_vv as vv;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use epidb_baselines::{SyncProtocol, SyncReport};
    pub use epidb_common::{
        ConflictEvent, ConflictSite, Costs, Error, ItemId, NodeId, Result, RouteTarget, ShardId,
    };
    pub use epidb_core::{
        oob_copy, pull, pull_delta, AcceptOutcome, ConflictPolicy, Engine, LocalTransport,
        OobOutcome, ProtocolRequest, ProtocolResponse, PullOutcome, Replica, ReplicaHost, ShardMap,
        ShardedNode, ShardedOob, TokenManager, Transport,
    };
    pub use epidb_store::{ItemValue, UpdateOp};
    pub use epidb_vv::{DbVersionVector, VersionVector, VvOrd};
}
