#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "== format =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== tests =="
cargo test -q --workspace

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== perf_report smoke =="
cargo run --release -q -p epidb-bench --bin perf_report -- \
  --smoke --assert-zero-copy --assert-small-path --assert-sharded-gossip \
  --assert-group-commit --assert-cold-start \
  --out target/bench_smoke.json
grep -q '"schema": "epidb-perf-report/v1"' target/bench_smoke.json

echo "== model checker smoke (exhaustive bounded exploration + self-test) =="
cargo run --release -q -p epidb-bench --bin mc -- --smoke

echo "== chaos soak smoke (seeded, deterministic) =="
cargo run --release -q -p epidb-bench --bin chaos_soak -- --smoke --seed 42

echo "== async reactor chaos soak smoke (loss + mid-exchange resets) =="
cargo run --release -q -p epidb-bench --bin chaos_soak -- \
  --smoke --seed 42 --async

echo "== crash-restart recovery soak smoke (durable runtimes) =="
cargo run --release -q -p epidb-bench --bin chaos_soak -- \
  --smoke --seed 42 --restart-from-disk

echo "== sharded chaos soak smoke (2 groups x 2 nodes, all runtimes) =="
cargo run --release -q -p epidb-bench --bin chaos_soak -- \
  --smoke --seed 42 --sharded

echo "CI green."
