//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: [`Bytes`],
//! a cheaply clonable, immutable, reference-counted byte buffer. The
//! semantics match the real crate for every operation provided here;
//! anything not provided is simply absent (adding it is a compile error,
//! not a silent behaviour change).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice. (The real crate is zero-copy here; this shim
    /// copies once — observable only as a one-time allocation.)
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(b) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        &self.data[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = Bytes::from_static(b"abc");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(c.len(), 3);
        assert_eq!(&c[..], b"abc");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![7; 1024]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
