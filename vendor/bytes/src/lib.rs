//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: [`Bytes`],
//! a cheaply clonable, immutable, reference-counted byte buffer, and
//! [`BytesMut`], a growable buffer that can be frozen into [`Bytes`]
//! without copying. The semantics match the real crate for every operation
//! provided here; anything not provided is simply absent (adding it is a
//! compile error, not a silent behaviour change).
//!
//! Representation note: [`Bytes`] is a `(Arc<Vec<u8>>, start, end)` view,
//! which makes `From<Vec<u8>>`, [`BytesMut::freeze`], and [`Bytes::slice`]
//! all zero-copy — the properties the zero-copy payload path relies on.
//! The real crate uses an inline vtable instead of the extra indirection;
//! for this workspace's value sizes the difference is noise.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (one shared empty backing per call site; never
    /// reallocated after creation).
    #[inline]
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice. (The real crate is zero-copy here; this shim
    /// copies once — observable only as a one-time allocation.)
    #[inline]
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the contents out into a `Vec<u8>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of this buffer sharing the same backing storage —
    /// zero-copy, like the real crate.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or decreasing.
    #[inline]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Recover the backing `Vec` without copying, when this handle is the
    /// sole owner *and* views the whole allocation; otherwise hand `self`
    /// back. The copy-on-write fast path for "mutate a value nobody else
    /// holds anymore".
    #[inline]
    pub fn try_into_vec(self) -> std::result::Result<Vec<u8>, Bytes> {
        if self.start != 0 || self.end != self.data.len() {
            return Err(self);
        }
        Arc::try_unwrap(self.data).map_err(|data| {
            let end = data.len();
            Bytes { data, start: 0, end }
        })
    }

    /// True when `self` and `other` view the same backing allocation (any
    /// range). A test/diagnostic helper; the real crate spells similar
    /// checks via pointer comparison on `as_ptr()`.
    #[inline]
    pub fn shares_storage_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    #[inline]
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    #[inline]
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    #[inline]
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    #[inline]
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    #[inline]
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    #[inline]
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    #[inline]
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

#[inline]
fn debug_bytes(data: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in data {
        if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    write!(f, "\"")
}

/// A unique, growable byte buffer that can be [frozen](BytesMut::freeze)
/// into an immutable [`Bytes`] without copying.
///
/// Vendored subset: a thin wrapper over `Vec<u8>` plus the little-endian
/// `put_*` appenders the wire codec uses. Unlike the real crate there is
/// no split/unsplit machinery — freeze hands off the whole buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer (no allocation).
    #[inline]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-reserved.
    #[inline]
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes the buffer can hold without reallocating.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserve room for at least `additional` more bytes.
    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Drop the contents, keeping the allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Resize to `new_len`, filling any growth with `value`.
    #[inline]
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Truncate to at most `len` bytes.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Append a slice.
    #[inline]
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Append one byte.
    #[inline]
    pub fn put_u8(&mut self, n: u8) {
        self.data.push(n);
    }

    /// Append a `u16`, little-endian.
    #[inline]
    pub fn put_u16_le(&mut self, n: u16) {
        self.data.extend_from_slice(&n.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    #[inline]
    pub fn put_u32_le(&mut self, n: u32) {
        self.data.extend_from_slice(&n.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    #[inline]
    pub fn put_u64_le(&mut self, n: u64) {
        self.data.extend_from_slice(&n.to_le_bytes());
    }

    /// Convert into an immutable [`Bytes`] — zero-copy; the allocation is
    /// handed to the `Bytes` as-is.
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Hand off the underlying `Vec` — zero-copy.
    #[inline]
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    #[inline]
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl fmt::Debug for BytesMut {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.data, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = Bytes::from_static(b"abc");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(c.len(), 3);
        assert_eq!(&c[..], b"abc");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![7; 1024]);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
    }

    #[test]
    fn slice_is_shallow_and_correct() {
        let a = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let mid = a.slice(8..16);
        assert_eq!(&mid[..], &(8u8..16).collect::<Vec<u8>>()[..]);
        assert!(mid.shares_storage_with(&a));
        let inner = mid.slice(2..4);
        assert_eq!(&inner[..], &[10, 11]);
        assert!(inner.shares_storage_with(&a));
        assert!(a.slice(..).len() == 32 && a.slice(4..).len() == 28);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![0; 4]).slice(2..6);
    }

    #[test]
    fn try_into_vec_unique_full_range() {
        let a = Bytes::from(vec![9; 16]);
        let v = a.try_into_vec().expect("sole owner, full range");
        assert_eq!(v, vec![9; 16]);

        // Shared: refused.
        let a = Bytes::from(vec![9; 16]);
        let b = a.clone();
        assert!(a.try_into_vec().is_err());
        assert_eq!(b.len(), 16);

        // Sub-range view: refused even when unique.
        let c = Bytes::from(vec![1, 2, 3, 4]).slice(1..3);
        assert!(c.try_into_vec().is_err());
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(1);
        m.put_u16_le(0x0302);
        m.put_u32_le(0x07060504);
        m.put_u64_le(0x0f0e0d0c0b0a0908);
        m.extend_from_slice(&[16, 17]);
        let ptr = m.as_ref().as_ptr();
        assert_eq!(m.len(), 17);
        let b = m.freeze();
        assert_eq!(&b[..], &(1u8..=17).collect::<Vec<u8>>()[..]);
        assert_eq!(b.as_ref().as_ptr(), ptr, "freeze must not copy");
    }

    #[test]
    fn bytes_mut_reuse() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[1; 100]);
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap, "clear keeps the allocation");
        m.extend_from_slice(&[2; 50]);
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
        let mut m = BytesMut::new();
        m.extend_from_slice(b"a\x00");
        assert_eq!(format!("{m:?}"), "b\"a\\x00\"");
    }
}
