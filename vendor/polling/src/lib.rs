//! Offline readiness-polling shim in the style of the other `vendor/`
//! crates: the small subset of a readiness API an event-driven server
//! needs, implemented directly over the Linux `epoll` syscalls (no
//! external crates — the symbols live in libc, which std already links).
//!
//! # Model
//!
//! A [`Poller`] owns one epoll instance. File descriptors are registered
//! with a caller-chosen `u64` key and an [`Interest`] (read and/or write
//! readiness). Registrations default to **oneshot**: after a readiness
//! event is delivered for a key, that registration is disarmed until the
//! caller re-arms it with [`Poller::modify`]. Oneshot is what makes a
//! *shared* poller safe — any number of worker threads can block in
//! [`Poller::wait`] on the same instance, and the kernel hands each ready
//! connection to exactly one of them; nobody races on a socket while
//! another worker is mid-read. Level-triggered (non-oneshot) registration
//! is available via [`Interest::level`] for fds that are drained fully on
//! every wakeup (e.g. an eventfd used as a doorbell).
//!
//! [`Notify`] is that doorbell: an `eventfd` whose [`Notify::notify`]
//! makes the poller's fd readable, waking one blocked waiter — used to
//! kick workers out of `wait` for shutdown or for newly queued work.
//!
//! Only Linux is supported (the epidb live runtimes are Linux-hosted);
//! on other targets [`Poller::new`] returns `Unsupported` so the crate
//! still compiles everywhere the workspace builds.

use std::io;
use std::time::Duration;

/// A readiness event delivered by [`Poller::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the fd was registered with.
    pub key: u64,
    /// The fd is readable (or has an error/hangup condition — those are
    /// folded into readability so the owner's next read surfaces them).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

/// What readiness to watch a registration for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub read: bool,
    /// Wake when the fd becomes writable.
    pub write: bool,
    /// Disarm the registration after one delivered event (re-arm with
    /// [`Poller::modify`]). Defaults to `true` in all constructors.
    pub oneshot: bool,
}

impl Interest {
    /// Readable, oneshot.
    pub const fn readable() -> Interest {
        Interest { read: true, write: false, oneshot: true }
    }

    /// Writable, oneshot.
    pub const fn writable() -> Interest {
        Interest { read: false, write: true, oneshot: true }
    }

    /// Readable and writable, oneshot.
    pub const fn both() -> Interest {
        Interest { read: true, write: true, oneshot: true }
    }

    /// The same interest, level-triggered (stays armed after events).
    pub const fn level(mut self) -> Interest {
        self.oneshot = false;
        self
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // The epoll and eventfd syscall surface. These symbols are provided by
    // glibc/musl, which std links unconditionally on Linux; declaring them
    // here costs no new dependency.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        if interest.oneshot {
            m |= EPOLLONESHOT;
        }
        m
    }

    pub struct Poller {
        epfd: RawFd,
    }

    // The epoll fd is safely shared across threads; that is its point.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: key };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, key, interest)
        }

        pub fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, key, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
            let timeout_ms = match timeout {
                // Round up so a 100µs timeout is a 1ms sleep, not a busy spin.
                Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as i32,
                None => -1,
            };
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            events.clear();
            for ev in &raw[..n] {
                let bits = ev.events;
                events.push(Event {
                    key: ev.data,
                    // Errors and hangups are reported as readability: the
                    // owner's next read returns 0/err and it tears down.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    pub struct Notify {
        fd: RawFd,
    }

    unsafe impl Send for Notify {}
    unsafe impl Sync for Notify {}

    impl Notify {
        pub fn new() -> io::Result<Notify> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(Notify { fd })
        }

        pub fn fd(&self) -> RawFd {
            self.fd
        }

        pub fn notify(&self) {
            let one = 1u64.to_ne_bytes();
            // A full counter (EAGAIN) already guarantees a pending wakeup.
            unsafe { write(self.fd, one.as_ptr(), 8) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for Notify {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "polling shim: only Linux is supported"))
    }

    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }
        pub fn add(&self, _fd: i32, _key: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn modify(&self, _fd: i32, _key: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }
        pub fn wait(&self, _ev: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            unsupported()
        }
    }

    pub struct Notify {}

    impl Notify {
        pub fn new() -> io::Result<Notify> {
            unsupported()
        }
        pub fn fd(&self) -> i32 {
            -1
        }
        pub fn notify(&self) {}
        pub fn drain(&self) {}
    }
}

/// A readiness poller: one epoll instance shared by any number of waiting
/// worker threads. See the crate docs for the oneshot re-arm discipline.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Create a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new()? })
    }

    /// Register `fd` under `key`. The fd must stay open until
    /// [`Poller::delete`]; the caller keeps ownership.
    pub fn add(&self, fd: i32, key: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, key, interest)
    }

    /// Re-arm (or change the interest of) an existing registration —
    /// required after every delivered event for oneshot registrations.
    pub fn modify(&self, fd: i32, key: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, key, interest)
    }

    /// Remove a registration. Safe to call for fds about to be closed.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// expires (`None` = wait forever). Ready events replace the contents
    /// of `events`; the return value is their number (0 = timeout).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }
}

/// An eventfd doorbell for waking [`Poller::wait`] callers. Register
/// [`Notify::fd`] with a reserved key and level-triggered read interest;
/// a woken worker calls [`Notify::drain`] and re-checks its run state.
pub struct Notify {
    inner: sys::Notify,
}

impl Notify {
    /// Create the doorbell.
    pub fn new() -> io::Result<Notify> {
        Ok(Notify { inner: sys::Notify::new()? })
    }

    /// The raw fd to register with a [`Poller`].
    pub fn fd(&self) -> i32 {
        self.inner.fd()
    }

    /// Wake one waiter (readiness stays pending until drained).
    pub fn notify(&self) {
        self.inner.notify()
    }

    /// Consume pending wakeups so the doorbell can fire again.
    pub fn drain(&self) {
        self.inner.drain()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn oneshot_readiness_fires_once_until_rearmed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        use std::os::unix::io::AsRawFd;
        poller.add(server.as_raw_fd(), 7, Interest::readable()).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Without draining or re-arming, the oneshot registration stays
        // disarmed: no further events even though data is still pending.
        let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert_eq!(n, 0);

        // Re-arm, and the (level-ready) data fires again.
        poller.modify(server.as_raw_fd(), 7, Interest::readable()).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);

        let mut s = server;
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        poller.delete(s.as_raw_fd()).unwrap();
    }

    #[test]
    fn notify_wakes_a_waiter() {
        let poller = Poller::new().unwrap();
        let notify = Notify::new().unwrap();
        poller.add(notify.fd(), 0, Interest::readable().level()).unwrap();

        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);

        notify.notify();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap(), 1);
        assert_eq!(events[0].key, 0);
        notify.drain();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
    }

    #[test]
    fn write_interest_reports_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        use std::os::unix::io::AsRawFd;
        poller.add(client.as_raw_fd(), 1, Interest::writable()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
    }
}
