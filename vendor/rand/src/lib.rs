//! Offline, API-compatible subset of the `rand` crate (0.8 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool` / `gen`. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality, deterministic, and fast; streams
//! differ from the real crate's ChaCha-based `StdRng` (which is fine: no
//! test in this workspace depends on the exact stream of upstream rand,
//! only on determinism per seed).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Rngs that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Create a generator from OS entropy (here: time + address entropy —
    /// this shim has no OS RNG dependency).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        let stack_entropy = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_entropy.rotate_left(32))
    }
}

/// Types that can be uniformly sampled from a range (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement distance is exact even when end - start
                // overflows the signed type.
                let span = self.end.wrapping_sub(self.start) as $u as u64 as u128;
                // Lemire-style widening multiply: uniform without the
                // modulo bias of the naive `next_u64() % span`.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as u64;
                self.start.wrapping_add(offset as $u as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                if end == <$t>::MAX {
                    // Shift down one so the half-open endpoint fits.
                    return (start.wrapping_sub(1)..end).sample_single(rng).wrapping_add(1);
                }
                (start..end.wrapping_add(1)).sample_single(rng)
            }
        }
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension methods over any [`RngCore`] (the rand 0.8 `Rng` trait).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::standard(self) < p
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A convenience thread-local-free "thread rng": freshly entropy-seeded.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_draws: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_draws: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_draws, c_draws);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u8);
            assert!(w <= 5);
        }
        // Small spans hit every value.
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "biased coin: {heads}");
    }
}
