//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of Criterion's API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BatchSize`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to cover a fixed measurement window,
//! and the mean ns/iter is printed. There are no statistical reports, HTML
//! output, or comparisons — the point is that `cargo bench` compiles, runs,
//! and prints honest wall-clock numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the shim
/// times per-batch either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per measurement batch.
    SmallInput,
    /// Large inputs: one per measurement batch.
    LargeInput,
    /// Explicit batch size.
    NumBatches(u64),
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    elapsed_ns_per_iter: f64,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly; the routine's return value is black-boxed
    /// so its computation cannot be optimized away.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up & calibration: estimate per-iter cost.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < self.measurement_time / 10 {
            std::hint::black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_nanos().max(1) as f64 / calib_iters as f64;
        let target = self.measurement_time.as_nanos() as f64;
        let iters = ((target / per_iter) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Time `routine` over fresh inputs built by `setup`; setup time and
    /// drop time of the routine's output are excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            let out = std::hint::black_box(routine(input));
            total += start.elapsed();
            drop(out);
            iters += 1;
        }
        self.elapsed_ns_per_iter = total.as_nanos().max(1) as f64 / iters.max(1) as f64;
    }

    /// As [`iter_batched`](Self::iter_batched), passing the input by
    /// reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        size: BatchSize,
    ) {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window for benches in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Shorten warm-up (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        routine: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher =
            Bencher { elapsed_ns_per_iter: 0.0, measurement_time: self.criterion.measurement_time };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher =
            Bencher { elapsed_ns_per_iter: 0.0, measurement_time: self.criterion.measurement_time };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Finish the group (prints nothing extra; provided for parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let ns = bencher.elapsed_ns_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  ({:.1} MiB/s)", b as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(e)) => {
                format!("  ({:.1} Melem/s)", e as f64 / ns * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!("{}/{:<32} {:>14.1} ns/iter{}", self.name, id.to_string(), ns, rate);
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, routine: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name_owned = name.to_string();
        let mut group = self.benchmark_group(name_owned);
        group.bench_function(BenchmarkId::from("bench"), routine);
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Parse CLI args (no-op in the shim; accepted so `configure_from_args`
    /// call sites compile).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Prevent the optimizer from eliding a value's computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion { measurement_time: Duration::from_millis(5) };
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
