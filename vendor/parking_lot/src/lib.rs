//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `parking_lot` it uses: a [`Mutex`] (and [`RwLock`])
//! whose `lock()` returns the guard directly instead of a poison `Result`.
//! Delegates to `std::sync`, recovering from poisoning the way parking_lot
//! behaves (a panicking holder does not poison the lock).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, a panic in
    /// a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquire methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("boom");
        })
        .join();
        assert_eq!(*m.lock(), 0); // lock() recovers, no Result to unwrap
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
