//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `crossbeam` it uses: unbounded MPSC channels with
//! `recv_timeout`, delegated to `std::sync::mpsc` (which has the same
//! semantics for every operation this workspace performs — single consumer
//! per receiver, clonable senders, disconnect detection).

pub mod channel {
    //! Multi-producer channels (subset of `crossbeam::channel`).

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// The receiving half. A thin wrapper over `std::sync::mpsc::Receiver`
    /// (kept as a distinct type so the API matches crossbeam's paths).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn senders_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap()).join().unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
