//! Strategies: composable random-value generators.
//!
//! A [`Strategy`] produces values of its `Value` type from a seeded RNG.
//! Unlike the real proptest there are no value trees and no shrinking;
//! `generate` returns the value directly. Combinators mirror the real
//! API: [`Strategy::prop_map`], [`Union`] (behind `prop_oneof!`), tuples,
//! ranges, and [`Just`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate from this strategy, then feed the value to `f` to obtain
    /// the strategy that produces the final value (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing `pred` (regenerates, up to a
    /// bounded number of attempts).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Weighted choice among boxed strategies of a common value type
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Full-range integer strategy backing `any::<int>()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyInt<T> {
    _marker: PhantomData<T>,
}

impl<T> AnyInt<T> {
    /// A full-range strategy.
    pub fn new() -> AnyInt<T> {
        AnyInt { _marker: PhantomData }
    }
}

/// Equiprobable boolean strategy (`any::<bool>()`, `prop::bool::ANY`).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(11)
    }

    #[test]
    fn just_clones() {
        assert_eq!(Just(vec![1, 2]).generate(&mut rng()), vec![1, 2]);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1u32..5).prop_map(|n| n * 10).prop_flat_map(|n| n..n + 3);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            let base = (v / 10) * 10;
            assert!((10..50).contains(&base) && v - base < 3);
        }
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn union_respects_zero_weight() {
        let mut r = rng();
        let s = Union::new(vec![(0, (0u8..10).boxed()), (1, (50u8..60).boxed())]);
        for _ in 0..50 {
            assert!((50..60).contains(&s.generate(&mut r)));
        }
    }
}
