//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the proptest API it actually uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! `prop_oneof!`, `prop::collection::vec`, `any::<T>()`, integer-range
//! strategies, tuple strategies, and `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics immediately; the runner
//!   prints the test name, case index, and the deterministic per-case seed
//!   before propagating the panic, so the failure is reproducible (set
//!   `PROPTEST_CASES` to raise the case count, and the printed seed
//!   pins the exact inputs).
//! * **Deterministic by default.** Case seeds derive from the test name
//!   and case index, so a failure in CI reproduces locally with no
//!   persistence files.
//! * `prop_assert!` family panics (like `assert!`) instead of returning
//!   `Err(TestCaseError)` — observationally identical for test outcomes.

pub mod strategy;

pub mod arbitrary {
    //! `Arbitrary` — default strategies per type.

    use crate::strategy::{AnyBool, AnyInt, Strategy};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy generating arbitrary values of `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> AnyInt<$t> {
                    AnyInt::new()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for collection strategies: a fixed length or a
    /// half-open range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)` — vectors whose length is
    /// drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool`).

    pub use crate::strategy::AnyBool;

    /// Either boolean, equiprobable.
    pub const ANY: AnyBool = AnyBool;
}

pub mod num {
    //! Numeric strategy helpers (`prop::num`). Range syntax (`0u64..10`)
    //! is the supported entry point; this module exists for path
    //! compatibility.
}

pub mod test_runner {
    //! The test runner and its configuration.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Runner configuration (subset of the real crate's fields).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Unused by this shim (kept for struct-literal compatibility).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            ProptestConfig { cases, max_shrink_iters: 0 }
        }
    }

    /// Drives one property: `cases` deterministic executions.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner for `config`.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Run `body` once per case with a deterministically seeded RNG.
        /// On panic, report the case index and seed, then re-panic.
        pub fn run(&mut self, name: &str, mut body: impl FnMut(&mut TestRng)) {
            for case in 0..self.config.cases {
                let seed = Self::case_seed(name, case);
                let mut rng = TestRng::seed_from_u64(seed);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    body(&mut rng);
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest: property `{name}` failed at case {case}/{} (seed \
                         {seed:#018x}); no shrinking in the offline shim — the seed \
                         reproduces the inputs exactly",
                        self.config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }

        /// FNV-1a over the test name, mixed with the case index.
        fn case_seed(name: &str, case: u32) -> u64 {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15))
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a property (panics on failure, like
/// `assert!` — the offline shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose among strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`] — one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(concat!(module_path!(), "::", stringify!($name)), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                $body
            });
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 5u32..17, b in 0usize..3) {
            prop_assert!((5..17).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn map_applies(n in arb_even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((any::<u8>(), 0u16..9), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&(_, b)| b < 9));
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![4 => 0u8..10, 1 => 200u8..210]) {
            prop_assert!(x < 10 || (200..210).contains(&x));
        }

        #[test]
        fn bool_any(b in prop::bool::ANY, flag in any::<bool>()) {
            prop_assert!(usize::from(b) + usize::from(flag) <= 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        /// Doc comments and low case counts parse.
        #[test]
        fn config_override_parses(_x in 0u8..2) {}
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::{TestRng, TestRunner};
        let strat = crate::collection::vec(0u32..100, 3..8);
        let mut first: Vec<Vec<u32>> = Vec::new();
        let mut runner =
            TestRunner::new(crate::test_runner::ProptestConfig { cases: 5, ..Default::default() });
        runner.run("det", |rng: &mut TestRng| {
            first.push(strat.generate(rng));
        });
        let mut second: Vec<Vec<u32>> = Vec::new();
        let mut runner =
            TestRunner::new(crate::test_runner::ProptestConfig { cases: 5, ..Default::default() });
        runner.run("det", |rng: &mut TestRng| {
            second.push(strat.generate(rng));
        });
        assert_eq!(first, second);
    }
}
